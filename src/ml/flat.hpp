// Flattened, branchless tree inference. The training-side structures
// (ml::DecisionTree / ml::RandomForest) keep their pointer-chasing
// vector<Node> layout, which is convenient to build but slow to
// evaluate: every node visit is a dependent load plus a data-dependent
// loop-exit branch. This header provides the raw-speed evaluation
// layout the serve hot path uses instead (ROADMAP item 3, grounded in
// PULP-NN's contiguous/quantized-layout discipline):
//
//  * FlatTree / FlatForest — structure-of-arrays node storage
//    (feature/threshold/children/label in separate contiguous arrays)
//    plus derived packed walk records (detail::Decide), traversed with
//    a branchless loop: every node, leaves included, has two children
//    (leaves point at themselves), each comparison picks the next
//    record with a conditional move, and the walk runs until every
//    in-flight row has parked on a self-edge — no data-dependent
//    branch ever mispredicts. predict_batch keeps several rows in
//    flight per step, turning the dependent-load chain into
//    independent chains that pipeline.
//
//  * FlatTreeQuant / FlatForestQuant — the same layout with int16
//    thresholds on a per-feature affine grid (Quantizer). Rows are
//    encoded once per batch, then every comparison is an int16 compare.
//    Quantization is monotone, so a comparison can only flip from
//    "right" to "left" when the value lands within one grid step of the
//    threshold; measure() counts exactly those flips, making the
//    divergence from the exact tree a measured, bounded quantity
//    instead of a hope (see DESIGN "Flat inference engine").
//
// Bit-exactness contract: FlatTree(tree).predict(row) ==
// tree.predict(row) for every row, including NaN inputs (both sides
// evaluate `!(v <= threshold)`), and predict_batch at any batch size
// equals the per-row loop. tests/test_flat_predict.cpp is the
// differential harness that enforces this over the whole registry.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/forest.hpp"
#include "ml/tree.hpp"

namespace pulpc::ml {

namespace detail {

/// Row-group interleave factor of the batch walk (chains in flight per
/// group, and the lane stride of the interleaved row encoding).
inline constexpr std::size_t kLane = 8;

/// Derived traversal records, rebuilt from the SoA arrays (never
/// serialized). Everything one walk step reads — threshold, feature
/// index and both child links — lives in a single power-of-two-sized,
/// alignment-matched record, so a step touches exactly one cache line.
/// Children are stored as BYTE OFFSETS into the record array (index
/// << kShift), which keeps the records position-independent and the
/// offset-to-address step a single add folded into the load.
///
/// The walk kernels are load-port bound (two loads per cycle on the
/// machines this targets), so the layout is chosen to make one step
/// exactly FOUR load micro-ops: both child offsets share one 8-byte
/// field (`children`, left in the low half, right in the high half)
/// loaded together, then the feature index, the row value, and the
/// threshold compare against memory. Splitting the children into
/// separate fields costs a fifth load. Crucially the child select is
/// a register-register pick of two halves of the SAME loaded qword:
/// give the ternary a memory arm (a separate left or right field) and
/// GCC refuses to speculate the load, emitting a mispredicting branch
/// instead of the cmov.
///
/// `feat` is pre-scaled by kLane, the interleave factor of the batch
/// row encoding: a block's rows are stored lane-interleaved (feature
/// f of row-group lane b at group[f*kLane + b]), so a walk step
/// addresses its row value as base + feat + constant lane offset —
/// one shared base register for the whole group where a row-major
/// layout needs a live pointer per in-flight row (they spill, and the
/// per-step stack reload is the fifth load again).
///
/// The threshold is stored as a monotone integer KEY of the double
/// (see walk_key in flat.cpp), and rows are encoded onto the same key
/// space once per batch. An integer compare decides exactly like the
/// double compare would — and, unlike a double ternary, compilers
/// if-convert it to a cmov instead of a mispredicting branch.
struct alignas(32) Decide {
  std::uint64_t thr = 0;       ///< walk_key of the split threshold
  std::uint64_t children = 0;  ///< left byte offset | right byte offset << 32
  std::uint32_t feat = 0;      ///< feature index, pre-scaled by kLane
  std::uint32_t pad = 0;
  std::uint64_t pad2 = 0;
  /// log2(sizeof): converts a record index to a byte offset and back.
  static constexpr unsigned kShift = 5;

  friend bool operator==(const Decide&, const Decide&) = default;
};
static_assert(sizeof(Decide) == 32);

/// int16-threshold variant, for pre-encoded int16 rows.
struct alignas(16) DecideQ {
  std::uint64_t children = 0;  ///< left byte offset | right byte offset << 32
  std::int16_t thr = 0;
  std::int16_t pad = 0;
  std::uint32_t feat = 0;  ///< feature index, pre-scaled by kLane
  static constexpr unsigned kShift = 4;

  friend bool operator==(const DecideQ&, const DecideQ&) = default;
};
static_assert(sizeof(DecideQ) == 16);

}  // namespace detail

class FlatTree {
 public:
  FlatTree() = default;
  /// Flatten a trained tree (BFS order, so siblings are adjacent).
  /// Throws std::invalid_argument when the tree is not trained.
  explicit FlatTree(const DecisionTree& tree);

  [[nodiscard]] int predict(std::span<const double> row) const;
  [[nodiscard]] std::vector<int> predict_batch(const Matrix& x) const;
  /// Allocation-free variant; out.size() must be >= x.rows.
  void predict_batch(const Matrix& x, std::span<int> out) const;

  [[nodiscard]] bool trained() const noexcept { return !feature_.empty(); }
  [[nodiscard]] std::size_t node_count() const noexcept {
    return feature_.size();
  }
  /// Traversal iterations (max leaf depth); 0 for a single-leaf tree.
  [[nodiscard]] int depth() const noexcept { return depth_; }
  [[nodiscard]] std::size_t feature_count() const noexcept {
    return n_features_;
  }

  // SoA views (persistence, quantization, tests). Leaves carry
  // feature 0, threshold +inf and self-referential children, so the
  // branchless walk parks on them.
  [[nodiscard]] const std::vector<std::int32_t>& features() const noexcept {
    return feature_;
  }
  [[nodiscard]] const std::vector<double>& thresholds() const noexcept {
    return threshold_;
  }
  [[nodiscard]] const std::vector<std::int32_t>& children() const noexcept {
    return children_;
  }
  [[nodiscard]] const std::vector<std::int32_t>& labels() const noexcept {
    return label_;
  }

  /// Persist as a small text section ("pulpc-flat v1"), embeddable in a
  /// larger model file. Throws std::logic_error when not trained.
  void save(std::ostream& out) const;
  /// Rebuild a saved flat tree. Throws std::runtime_error on malformed
  /// input (bad header, truncation, out-of-range indices).
  [[nodiscard]] static FlatTree load(std::istream& in);

  /// Content equality over the serialized state (the derived walk
  /// records are a pure function of it, so they are excluded).
  friend bool operator==(const FlatTree& a, const FlatTree& b);

 private:
  friend class FlatForest;
  friend class FlatTreeQuant;
  friend class FlatForestQuant;

  /// Rebuild decide_ from the SoA arrays (ctor, load()).
  void build_walk();

  std::vector<std::int32_t> feature_;
  std::vector<double> threshold_;
  std::vector<std::int32_t> children_;  ///< 2*n: [left0,right0,left1,...]
  std::vector<std::int32_t> label_;
  // Derived packed traversal layout, a deterministic function of the
  // SoA arrays above (excluded from operator==).
  std::vector<detail::Decide> decide_;
  int depth_ = 0;
  std::size_t n_features_ = 0;
};

class FlatForest {
 public:
  FlatForest() = default;
  /// Flatten every member tree of a trained forest.
  explicit FlatForest(const RandomForest& forest);

  /// Majority vote over the ensemble; identical tie-breaking to
  /// RandomForest::predict (ties go to the smaller label).
  [[nodiscard]] int predict(std::span<const double> row) const;
  [[nodiscard]] std::vector<int> predict_batch(const Matrix& x) const;

  [[nodiscard]] bool trained() const noexcept { return !trees_.empty(); }
  [[nodiscard]] std::size_t tree_count() const noexcept {
    return trees_.size();
  }
  [[nodiscard]] const std::vector<FlatTree>& trees() const noexcept {
    return trees_;
  }

 private:
  friend class FlatForestQuant;

  std::vector<FlatTree> trees_;
  int max_label_ = 0;
};

/// Per-feature affine int16 grid: encode(f, v) maps v onto
/// round((v - ref[f]) / step[f]) clamped to the int16 range, with ref
/// the midpoint of the covered range so the grid spans it symmetrically
/// with headroom on both sides. Monotone non-decreasing in v by
/// construction, which is what bounds the quantized tree's divergence
/// (see flat.cpp).
class Quantizer {
 public:
  Quantizer() = default;
  /// Build grids covering `values[f]` for each feature f (thresholds
  /// plus optional calibration data). A feature with no spread gets a
  /// unit step.
  explicit Quantizer(const std::vector<std::vector<double>>& values);

  [[nodiscard]] std::int16_t encode(std::size_t f, double v) const;
  /// Encode one row into out[0..features).
  void encode_row(std::span<const double> row, std::int16_t* out) const;

  [[nodiscard]] std::size_t features() const noexcept { return ref_.size(); }
  [[nodiscard]] double step(std::size_t f) const { return step_[f]; }
  [[nodiscard]] double ref(std::size_t f) const { return ref_[f]; }

 private:
  std::vector<double> ref_;
  std::vector<double> step_;
  std::vector<double> inv_step_;
};

/// Divergence report of a quantized tree/forest against its exact
/// source, measured over a matrix of rows. `flipped` counts rows whose
/// exact traversal contains at least one comparison the quantized grid
/// decides differently — every diverging row is such a row (the
/// asserted bound), and outside grid saturation a flip requires
/// value - threshold <= step(feature) (max_flip_gap records the worst
/// observed gap).
struct QuantDivergence {
  std::size_t rows = 0;
  std::size_t diverged = 0;      ///< predictions that differ
  std::size_t flipped = 0;       ///< rows with >= 1 flipped comparison
  double max_flip_gap = 0;       ///< max (v - thr) over non-saturated flips
  double max_step = 0;           ///< coarsest grid step actually hit
};

class FlatTreeQuant {
 public:
  FlatTreeQuant() = default;
  /// Quantize a flat tree's thresholds. The grid covers the tree's own
  /// thresholds plus, when given, the calibration matrix's values, so
  /// in-distribution values never saturate the grid.
  explicit FlatTreeQuant(const FlatTree& tree,
                         const Matrix* calibration = nullptr);

  [[nodiscard]] int predict(std::span<const double> row) const;
  [[nodiscard]] std::vector<int> predict_batch(const Matrix& x) const;

  [[nodiscard]] bool trained() const noexcept { return !feature_.empty(); }
  [[nodiscard]] std::size_t node_count() const noexcept {
    return feature_.size();
  }
  [[nodiscard]] const Quantizer& quantizer() const noexcept { return quant_; }

  /// Measure divergence against the exact tree this was built from.
  /// Throws std::invalid_argument when shapes do not match.
  [[nodiscard]] QuantDivergence measure(const FlatTree& exact,
                                        const Matrix& x) const;

 private:
  Quantizer quant_;
  std::vector<std::int32_t> feature_;
  std::vector<std::int16_t> threshold_;
  std::vector<std::int32_t> children_;
  std::vector<std::int32_t> label_;
  std::vector<detail::DecideQ> decide_;
  int depth_ = 0;
};

class FlatForestQuant {
 public:
  FlatForestQuant() = default;
  /// One shared quantizer for the whole ensemble (grids cover every
  /// member tree's thresholds plus optional calibration rows), so a row
  /// is encoded once per batch, not once per tree.
  explicit FlatForestQuant(const FlatForest& forest,
                           const Matrix* calibration = nullptr);

  [[nodiscard]] int predict(std::span<const double> row) const;
  [[nodiscard]] std::vector<int> predict_batch(const Matrix& x) const;

  [[nodiscard]] bool trained() const noexcept { return !trees_.empty(); }
  [[nodiscard]] std::size_t tree_count() const noexcept {
    return trees_.size();
  }
  [[nodiscard]] const Quantizer& quantizer() const noexcept { return quant_; }

  /// Vote-level divergence against the exact forest.
  [[nodiscard]] QuantDivergence measure(const FlatForest& exact,
                                        const Matrix& x) const;

 private:
  /// SoA node arrays of one quantized member tree.
  struct Nodes {
    std::vector<std::int32_t> feature;
    std::vector<std::int16_t> threshold;
    std::vector<std::int32_t> children;
    std::vector<std::int32_t> label;
    std::vector<detail::DecideQ> decide;
    int depth = 0;
  };

  Quantizer quant_;
  std::vector<Nodes> trees_;
  std::size_t n_features_ = 0;
  int max_label_ = 0;
};

}  // namespace pulpc::ml
