#include "ml/metrics.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace pulpc::ml {

double energy_waste(const Sample& sample, int predicted) {
  if (predicted < 1 ||
      static_cast<std::size_t>(predicted) > sample.energy.size()) {
    return std::numeric_limits<double>::infinity();
  }
  const double best =
      *std::min_element(sample.energy.begin(), sample.energy.end());
  if (best <= 0) return std::numeric_limits<double>::infinity();
  const double got = sample.energy[static_cast<std::size_t>(predicted - 1)];
  return (got - best) / best;
}

bool within_tolerance(const Sample& sample, int predicted, double tol) {
  return energy_waste(sample, predicted) <= tol + 1e-12;
}

double tolerance_accuracy(const std::vector<Sample>& samples,
                          const std::vector<int>& predictions, double tol) {
  if (samples.size() != predictions.size()) {
    throw std::invalid_argument("tolerance_accuracy: size mismatch");
  }
  if (samples.empty()) return 0.0;
  std::size_t good = 0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (within_tolerance(samples[i], predictions[i], tol)) ++good;
  }
  return static_cast<double>(good) / static_cast<double>(samples.size());
}

double tolerance_accuracy(const std::vector<Sample>& samples,
                          const std::vector<std::size_t>& indices,
                          const std::vector<int>& predictions, double tol) {
  if (indices.size() != predictions.size()) {
    throw std::invalid_argument("tolerance_accuracy: size mismatch");
  }
  if (indices.empty()) return 0.0;
  std::size_t good = 0;
  for (std::size_t i = 0; i < indices.size(); ++i) {
    if (within_tolerance(samples[indices[i]], predictions[i], tol)) ++good;
  }
  return static_cast<double>(good) / static_cast<double>(indices.size());
}

std::vector<std::vector<std::size_t>> confusion_matrix(
    const std::vector<int>& truth, const std::vector<int>& predictions,
    int max_label) {
  if (truth.size() != predictions.size()) {
    throw std::invalid_argument("confusion_matrix: size mismatch");
  }
  const auto n = static_cast<std::size_t>(max_label) + 1;
  std::vector<std::vector<std::size_t>> m(n, std::vector<std::size_t>(n, 0));
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const int t = truth[i];
    const int p = predictions[i];
    if (t >= 0 && t <= max_label && p >= 0 && p <= max_label) {
      ++m[static_cast<std::size_t>(t)][static_cast<std::size_t>(p)];
    }
  }
  return m;
}

std::vector<double> default_tolerances() {
  std::vector<double> t;
  for (int i = 0; i <= 20; ++i) t.push_back(i / 100.0);
  return t;
}

}  // namespace pulpc::ml
