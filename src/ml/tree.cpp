#include "ml/tree.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <numeric>
#include <iostream>
#include <random>
#include <sstream>
#include <stdexcept>

namespace pulpc::ml {

namespace {

/// Gini impurity from class counts.
double gini(const std::vector<std::size_t>& counts, double n) {
  if (n <= 0) return 0.0;
  double sum_sq = 0;
  for (const std::size_t c : counts) {
    const auto cd = static_cast<double>(c);
    sum_sq += cd * cd;
  }
  return 1.0 - sum_sq / (n * n);
}

int majority_label(const std::vector<std::size_t>& counts) {
  std::size_t best = 0;
  int label = 0;
  for (std::size_t k = 0; k < counts.size(); ++k) {
    if (counts[k] > best) {
      best = counts[k];
      label = static_cast<int>(k);
    }
  }
  return label;
}

}  // namespace

void DecisionTree::fit(const Matrix& x, const std::vector<int>& y) {
  std::vector<std::size_t> rows(x.rows);
  std::iota(rows.begin(), rows.end(), 0);
  fit(x, y, rows);
}

void DecisionTree::fit(const Matrix& x, const std::vector<int>& y,
                       const std::vector<std::size_t>& rows) {
  if (x.rows != y.size()) {
    throw std::invalid_argument("DecisionTree::fit: label count mismatch");
  }
  if (rows.empty() || x.cols == 0) {
    throw std::invalid_argument("DecisionTree::fit: empty training set");
  }
  nodes_.clear();
  importances_.assign(x.cols, 0.0);
  depth_ = 0;
  fit_rows_ = rows.size();
  std::vector<std::size_t> work = rows;
  build(x, y, work, 0, work.size(), 0);
  const double total =
      std::accumulate(importances_.begin(), importances_.end(), 0.0);
  if (total > 0) {
    for (double& v : importances_) v /= total;
  }
}

int DecisionTree::build(const Matrix& x, const std::vector<int>& y,
                        std::vector<std::size_t>& rows, std::size_t begin,
                        std::size_t end, int depth) {
  const std::size_t n = end - begin;
  depth_ = std::max(depth_, depth);

  int max_label = 0;
  for (std::size_t i = begin; i < end; ++i) {
    max_label = std::max(max_label, y[rows[i]]);
  }
  std::vector<std::size_t> counts(static_cast<std::size_t>(max_label) + 1, 0);
  for (std::size_t i = begin; i < end; ++i) ++counts[y[rows[i]]];
  const double node_gini = gini(counts, static_cast<double>(n));

  const auto make_leaf = [&] {
    Node leaf;
    leaf.label = majority_label(counts);
    nodes_.push_back(leaf);
    return static_cast<int>(nodes_.size() - 1);
  };

  if (node_gini <= 0.0 || depth >= params_.max_depth ||
      n < static_cast<std::size_t>(params_.min_samples_split)) {
    return make_leaf();
  }

  // Candidate features (optionally a seeded random subset, for forests).
  std::vector<std::size_t> feats(x.cols);
  std::iota(feats.begin(), feats.end(), 0);
  if (params_.max_features > 0 &&
      static_cast<std::size_t>(params_.max_features) < x.cols) {
    std::mt19937_64 rng(params_.seed * 0x9E3779B97F4A7C15ULL + depth * 977 +
                        begin * 31 + end);
    std::shuffle(feats.begin(), feats.end(), rng);
    feats.resize(static_cast<std::size_t>(params_.max_features));
    std::sort(feats.begin(), feats.end());  // deterministic scan order
  }

  double best_gain = 1e-12;
  int best_feature = -1;
  double best_threshold = 0;

  std::vector<std::pair<double, int>> vals(n);
  std::vector<std::size_t> left_counts(counts.size());
  for (const std::size_t f : feats) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t r = rows[begin + i];
      vals[i] = {x.at(r, f), y[r]};
    }
    std::sort(vals.begin(), vals.end());
    std::fill(left_counts.begin(), left_counts.end(), 0);
    for (std::size_t i = 1; i < n; ++i) {
      ++left_counts[static_cast<std::size_t>(vals[i - 1].second)];
      if (vals[i].first <= vals[i - 1].first) continue;  // same value
      const auto nl = static_cast<double>(i);
      const auto nr = static_cast<double>(n - i);
      if (i < static_cast<std::size_t>(params_.min_samples_leaf) ||
          n - i < static_cast<std::size_t>(params_.min_samples_leaf)) {
        continue;
      }
      double sum_sq_l = 0;
      for (const std::size_t c : left_counts) {
        sum_sq_l += static_cast<double>(c) * static_cast<double>(c);
      }
      double sum_sq_r = 0;
      for (std::size_t k = 0; k < counts.size(); ++k) {
        const auto c = static_cast<double>(counts[k] - left_counts[k]);
        sum_sq_r += c * c;
      }
      const double gini_l = 1.0 - sum_sq_l / (nl * nl);
      const double gini_r = 1.0 - sum_sq_r / (nr * nr);
      const double weighted =
          (nl * gini_l + nr * gini_r) / static_cast<double>(n);
      const double gain = node_gini - weighted;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_threshold = (vals[i - 1].first + vals[i].first) / 2.0;
      }
    }
  }

  if (best_feature < 0) return make_leaf();

  // Weighted impurity decrease -> Gini importance.
  importances_[static_cast<std::size_t>(best_feature)] +=
      best_gain * static_cast<double>(n) / static_cast<double>(fit_rows_);

  const auto mid_it = std::stable_partition(
      rows.begin() + static_cast<std::ptrdiff_t>(begin),
      rows.begin() + static_cast<std::ptrdiff_t>(end),
      [&](std::size_t r) {
        return x.at(r, static_cast<std::size_t>(best_feature)) <=
               best_threshold;
      });
  const auto mid =
      static_cast<std::size_t>(mid_it - rows.begin());

  Node node;
  node.feature = best_feature;
  node.threshold = best_threshold;
  node.label = majority_label(counts);
  nodes_.push_back(node);
  const auto self = static_cast<int>(nodes_.size() - 1);
  const int left = build(x, y, rows, begin, mid, depth + 1);
  const int right = build(x, y, rows, mid, end, depth + 1);
  nodes_[static_cast<std::size_t>(self)].left = left;
  nodes_[static_cast<std::size_t>(self)].right = right;
  return self;
}

int DecisionTree::predict(std::span<const double> row) const {
  if (nodes_.empty()) {
    throw std::logic_error("DecisionTree::predict: not trained");
  }
  std::size_t at = 0;
  while (nodes_[at].feature >= 0) {
    const Node& nd = nodes_[at];
    const double v = row[static_cast<std::size_t>(nd.feature)];
    const int next = v <= nd.threshold ? nd.left : nd.right;
    if (next < 0) break;
    at = static_cast<std::size_t>(next);
  }
  return nodes_[at].label;
}

std::vector<int> DecisionTree::predict_batch(const Matrix& x) const {
  std::vector<int> out;
  out.reserve(x.rows);
  for (std::size_t r = 0; r < x.rows; ++r) {
    out.push_back(predict(std::span(x.row(r), x.cols)));
  }
  return out;
}

std::vector<int> DecisionTree::predict(const Matrix& x) const {
  return predict_batch(x);
}

void DecisionTree::save(std::ostream& out) const {
  if (nodes_.empty()) {
    throw std::logic_error("DecisionTree::save: not trained");
  }
  out << "pulpc-tree v1\n";
  out << nodes_.size() << ' ' << importances_.size() << ' ' << depth_
      << '\n';
  out.precision(17);
  for (const Node& n : nodes_) {
    out << n.feature << ' ' << n.threshold << ' ' << n.left << ' '
        << n.right << ' ' << n.label << '\n';
  }
  for (std::size_t i = 0; i < importances_.size(); ++i) {
    out << importances_[i] << (i + 1 < importances_.size() ? ' ' : '\n');
  }
}

DecisionTree DecisionTree::load(std::istream& in) {
  std::string magic;
  std::string version;
  in >> magic >> version;
  if (magic != "pulpc-tree" || version != "v1") {
    throw std::runtime_error("DecisionTree::load: bad header");
  }
  std::size_t nodes = 0;
  std::size_t features = 0;
  DecisionTree tree;
  if (!(in >> nodes >> features >> tree.depth_) || nodes == 0) {
    throw std::runtime_error("DecisionTree::load: bad shape line");
  }
  tree.nodes_.resize(nodes);
  for (Node& n : tree.nodes_) {
    if (!(in >> n.feature >> n.threshold >> n.left >> n.right >> n.label)) {
      throw std::runtime_error("DecisionTree::load: truncated node list");
    }
    const auto limit = static_cast<int>(nodes);
    if (n.feature >= static_cast<int>(features) || n.left >= limit ||
        n.right >= limit) {
      throw std::runtime_error("DecisionTree::load: node out of range");
    }
  }
  tree.importances_.resize(features);
  for (double& v : tree.importances_) {
    if (!(in >> v)) {
      throw std::runtime_error("DecisionTree::load: truncated importances");
    }
  }
  return tree;
}

std::string DecisionTree::to_string(
    const std::vector<std::string>& feature_names) const {
  std::ostringstream os;
  const auto name = [&](int f) {
    const auto idx = static_cast<std::size_t>(f);
    return idx < feature_names.size() ? feature_names[idx]
                                      : "x" + std::to_string(f);
  };
  const std::function<void(int, int)> dump = [&](int node, int indent) {
    const Node& nd = nodes_[static_cast<std::size_t>(node)];
    const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
    if (nd.feature < 0) {
      os << pad << "-> " << nd.label << '\n';
      return;
    }
    os << pad << "if " << name(nd.feature) << " <= " << nd.threshold << '\n';
    dump(nd.left, indent + 1);
    os << pad << "else\n";
    dump(nd.right, indent + 1);
  };
  if (!nodes_.empty()) dump(0, 0);
  return os.str();
}

}  // namespace pulpc::ml
