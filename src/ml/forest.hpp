// Random forest (bagged CART trees with feature subsampling). Not used
// by the paper's headline results but implemented as the natural
// extension: related work ([7] Benedict et al.) models OpenMP energy with
// random forests, and the ablation benches compare it against the single
// decision tree.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/tree.hpp"

namespace pulpc::ml {

struct ForestParams {
  int n_trees = 50;
  /// 0 = use sqrt(#columns) features per split.
  int max_features = 0;
  bool bootstrap = true;
  std::uint64_t seed = 0;
  TreeParams tree;
};

class RandomForest {
 public:
  explicit RandomForest(ForestParams params = {}) : params_(params) {}

  void fit(const Matrix& x, const std::vector<int>& y);
  void fit(const Matrix& x, const std::vector<int>& y,
           const std::vector<std::size_t>& rows);

  /// Majority vote over the ensemble (ties break to the smaller label).
  [[nodiscard]] int predict(std::span<const double> row) const;
  /// Thin wrapper over predict_batch (kept for source compatibility).
  [[nodiscard]] std::vector<int> predict(const Matrix& x) const;
  /// Batch prediction: per-tree batch walks (tree-major for node-array
  /// locality) + one vote accumulation pass; identical results to the
  /// per-row predict, including tie-breaking. Reference implementation
  /// for ml::FlatForest.
  [[nodiscard]] std::vector<int> predict_batch(const Matrix& x) const;

  /// Mean of the member trees' normalised Gini importances.
  [[nodiscard]] const std::vector<double>& feature_importances() const {
    return importances_;
  }

  [[nodiscard]] bool trained() const noexcept { return !trees_.empty(); }
  [[nodiscard]] std::size_t tree_count() const noexcept {
    return trees_.size();
  }
  /// Read-only view of the fitted member trees (flattening, tests).
  [[nodiscard]] const std::vector<DecisionTree>& trees() const noexcept {
    return trees_;
  }

 private:
  ForestParams params_;
  std::vector<DecisionTree> trees_;
  std::vector<double> importances_;
};

}  // namespace pulpc::ml
