#include "ml/dataset.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace pulpc::ml {

namespace {

// RFC4180-style field split: a field starting with '"' runs to the
// matching close quote, with "" unescaping to a literal quote. Plain
// fields (the overwhelmingly common case) pass through untouched, so
// files written before quoting existed parse identically.
std::vector<std::string> split(const std::string& line, char sep) {
  std::vector<std::string> out;
  if (line.empty()) return out;
  std::string field;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"' && field.empty()) {
      quoted = true;
    } else if (c == sep) {
      out.push_back(std::move(field));
      field.clear();
    } else {
      field += c;
    }
  }
  out.push_back(std::move(field));
  return out;
}

// Quote a string field whose content would collide with the separator
// or the quote character. Newlines cannot round-trip through the
// line-oriented reader, so they are rejected outright.
std::string csv_field(const std::string& s) {
  if (s.find('\n') != std::string::npos) {
    throw std::invalid_argument("Dataset: field contains a newline: " + s);
  }
  if (s.find_first_of(",\"") == std::string::npos) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

// FNV-1a 64-bit over the header line: the "cols=" fingerprint of the
// schema comment. (Deliberately self-contained — ml must not depend on
// core, where the artifact store keeps its own copy.)
std::uint64_t header_fingerprint(const std::string& header) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : header) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

constexpr const char* kSchemaTag = "# pulpclass-dataset";

}  // namespace

void Dataset::add(Sample sample) {
  if (sample.features.size() != columns_.size()) {
    throw std::invalid_argument(
        "Dataset::add(" + sample.kernel + "): feature vector size " +
        std::to_string(sample.features.size()) + " != column count " +
        std::to_string(columns_.size()));
  }
  if (sample.energy.size() != sample.cycles.size()) {
    throw std::invalid_argument("Dataset::add(" + sample.kernel +
                                "): energy/cycle vector size mismatch");
  }
  samples_.push_back(std::move(sample));
}

std::vector<std::size_t> Dataset::column_indices(
    const std::vector<std::string>& cols) const {
  std::vector<std::size_t> idx;
  idx.reserve(cols.size());
  for (const std::string& name : cols) {
    bool found = false;
    for (std::size_t i = 0; i < columns_.size(); ++i) {
      if (columns_[i] == name) {
        idx.push_back(i);
        found = true;
        break;
      }
    }
    if (!found) {
      throw std::invalid_argument("Dataset: unknown column " + name);
    }
  }
  return idx;
}

Matrix Dataset::matrix(const std::vector<std::string>& cols) const {
  const std::vector<std::size_t> idx = column_indices(cols);
  Matrix m;
  m.rows = samples_.size();
  m.cols = idx.size();
  m.data.reserve(m.rows * m.cols);
  for (const Sample& s : samples_) {
    for (const std::size_t i : idx) m.data.push_back(s.features[i]);
  }
  return m;
}

std::vector<int> Dataset::labels() const {
  std::vector<int> y;
  y.reserve(samples_.size());
  for (const Sample& s : samples_) y.push_back(s.label);
  return y;
}

std::vector<std::size_t> Dataset::label_histogram(int max_label) const {
  std::vector<std::size_t> h(static_cast<std::size_t>(max_label) + 1, 0);
  for (const Sample& s : samples_) {
    if (s.label >= 0 && s.label <= max_label) {
      ++h[static_cast<std::size_t>(s.label)];
    }
  }
  return h;
}

void Dataset::save_csv(std::ostream& out) const {
  const std::size_t nconf =
      samples_.empty() ? 8 : samples_.front().energy.size();
  std::string header = "kernel,suite,dtype,size_bytes,label";
  for (std::size_t k = 1; k <= nconf; ++k) {
    header += ",e" + std::to_string(k);
  }
  for (std::size_t k = 1; k <= nconf; ++k) {
    header += ",c" + std::to_string(k);
  }
  for (const std::string& c : columns_) header += ',' + csv_field(c);
  out << kSchemaTag << " v" << kDatasetSchemaVersion << " cols=" << std::hex
      << header_fingerprint(header) << std::dec << '\n';
  out << header << '\n';
  out.precision(17);
  for (const Sample& s : samples_) {
    out << csv_field(s.kernel) << ',' << csv_field(s.suite) << ','
        << kir::to_string(s.dtype)
        << ',' << s.size_bytes << ',' << s.label;
    for (const double e : s.energy) out << ',' << e;
    for (const double c : s.cycles) out << ',' << c;
    for (const double f : s.features) out << ',' << f;
    out << '\n';
  }
}

Dataset Dataset::load_csv(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) {
    throw std::runtime_error("Dataset::load_csv: empty input");
  }
  // Optional schema comment: absent on legacy caches (tolerated,
  // reported as version 0); when present, both the version and the
  // header fingerprint must match.
  int schema_version = 0;
  if (line.rfind(kSchemaTag, 0) == 0) {
    std::istringstream meta(line.substr(std::string(kSchemaTag).size()));
    std::string ver;
    std::string cols;
    if (!(meta >> ver >> cols) || ver.size() < 2 || ver[0] != 'v' ||
        cols.rfind("cols=", 0) != 0) {
      throw std::runtime_error("Dataset::load_csv: malformed schema comment");
    }
    int version = 0;
    try {
      version = std::stoi(ver.substr(1));
    } catch (const std::exception&) {
      throw std::runtime_error("Dataset::load_csv: malformed schema comment");
    }
    if (version != kDatasetSchemaVersion) {
      throw std::runtime_error(
          "Dataset::load_csv: schema version v" + ver.substr(1) +
          " does not match this build's v" +
          std::to_string(kDatasetSchemaVersion));
    }
    if (!std::getline(in, line)) {
      throw std::runtime_error("Dataset::load_csv: missing header");
    }
    std::uint64_t expected = 0;
    try {
      expected = std::stoull(cols.substr(5), nullptr, 16);
    } catch (const std::exception&) {
      throw std::runtime_error("Dataset::load_csv: malformed schema comment");
    }
    if (header_fingerprint(line) != expected) {
      throw std::runtime_error(
          "Dataset::load_csv: header does not match its schema fingerprint");
    }
    schema_version = version;
  }
  const std::vector<std::string> header = split(line, ',');
  constexpr std::size_t kMeta = 5;
  if (header.size() < kMeta || header[0] != "kernel") {
    throw std::runtime_error("Dataset::load_csv: bad header");
  }
  // Count the e1..eN / c1..cN vector columns.
  std::size_t nconf = 0;
  while (kMeta + nconf < header.size() &&
         header[kMeta + nconf] == "e" + std::to_string(nconf + 1)) {
    ++nconf;
  }
  const std::size_t feat_start = kMeta + 2 * nconf;
  if (nconf == 0 || feat_start > header.size()) {
    throw std::runtime_error("Dataset::load_csv: bad vector columns");
  }
  Dataset ds(std::vector<std::string>(header.begin() + feat_start,
                                      header.end()));
  ds.schema_version_ = schema_version;
  std::size_t line_no = schema_version > 0 ? 2 : 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const std::vector<std::string> f = split(line, ',');
    if (f.size() != header.size()) {
      throw std::runtime_error("Dataset::load_csv: line " +
                               std::to_string(line_no) + " has " +
                               std::to_string(f.size()) + " fields");
    }
    Sample s;
    s.kernel = f[0];
    s.suite = f[1];
    s.dtype = f[2] == "f32" ? kir::DType::F32 : kir::DType::I32;
    s.size_bytes = static_cast<std::uint32_t>(std::stoul(f[3]));
    s.label = std::stoi(f[4]);
    for (std::size_t k = 0; k < nconf; ++k) {
      s.energy.push_back(std::stod(f[kMeta + k]));
    }
    for (std::size_t k = 0; k < nconf; ++k) {
      s.cycles.push_back(std::stod(f[kMeta + nconf + k]));
    }
    for (std::size_t k = feat_start; k < f.size(); ++k) {
      s.features.push_back(std::stod(f[k]));
    }
    ds.add(std::move(s));
  }
  return ds;
}

void Dataset::save_csv_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("Dataset: cannot write " + path);
  }
  save_csv(out);
}

Dataset Dataset::load_csv_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("Dataset: cannot read " + path);
  }
  return load_csv(in);
}

}  // namespace pulpc::ml
