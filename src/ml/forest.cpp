#include "ml/forest.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <random>
#include <stdexcept>

namespace pulpc::ml {

void RandomForest::fit(const Matrix& x, const std::vector<int>& y) {
  std::vector<std::size_t> rows(x.rows);
  std::iota(rows.begin(), rows.end(), 0);
  fit(x, y, rows);
}

void RandomForest::fit(const Matrix& x, const std::vector<int>& y,
                       const std::vector<std::size_t>& rows) {
  if (params_.n_trees <= 0) {
    throw std::invalid_argument("RandomForest::fit: n_trees must be > 0");
  }
  trees_.clear();
  importances_.assign(x.cols, 0.0);
  std::mt19937_64 rng(params_.seed);
  const int mf =
      params_.max_features > 0
          ? params_.max_features
          : std::max(1, static_cast<int>(
                            std::lround(std::sqrt(double(x.cols)))));
  std::uniform_int_distribution<std::size_t> pick(0, rows.size() - 1);
  for (int t = 0; t < params_.n_trees; ++t) {
    TreeParams tp = params_.tree;
    tp.max_features = mf;
    tp.seed = rng();
    DecisionTree tree(tp);
    if (params_.bootstrap) {
      std::vector<std::size_t> sample(rows.size());
      for (std::size_t& r : sample) r = rows[pick(rng)];
      tree.fit(x, y, sample);
    } else {
      tree.fit(x, y, rows);
    }
    const std::vector<double>& imp = tree.feature_importances();
    for (std::size_t i = 0; i < imp.size(); ++i) importances_[i] += imp[i];
    trees_.push_back(std::move(tree));
  }
  for (double& v : importances_) v /= params_.n_trees;
}

int RandomForest::predict(std::span<const double> row) const {
  if (trees_.empty()) {
    throw std::logic_error("RandomForest::predict: not trained");
  }
  std::vector<int> votes;
  for (const DecisionTree& t : trees_) {
    const int label = t.predict(row);
    if (static_cast<std::size_t>(label) >= votes.size()) {
      votes.resize(static_cast<std::size_t>(label) + 1, 0);
    }
    ++votes[static_cast<std::size_t>(label)];
  }
  int best = 0;
  for (std::size_t k = 0; k < votes.size(); ++k) {
    if (votes[k] > votes[static_cast<std::size_t>(best)]) {
      best = static_cast<int>(k);
    }
  }
  return best;
}

std::vector<int> RandomForest::predict_batch(const Matrix& x) const {
  if (trees_.empty()) {
    throw std::logic_error("RandomForest::predict: not trained");
  }
  // Tree-major: each member tree walks the whole batch while its node
  // array is hot, then its labels fold into the per-row vote counts.
  // First-max argmax over labels 0..max matches the per-row predict's
  // tie-breaking (ties go to the smaller label); labels no tree ever
  // emitted stay at count zero and cannot win.
  int max_label = 0;
  std::vector<std::vector<int>> labels;
  labels.reserve(trees_.size());
  for (const DecisionTree& t : trees_) {
    labels.push_back(t.predict_batch(x));
    for (const int l : labels.back()) max_label = std::max(max_label, l);
  }
  const std::size_t stride = static_cast<std::size_t>(max_label) + 1;
  std::vector<int> votes(x.rows * stride, 0);
  for (const std::vector<int>& per_tree : labels) {
    for (std::size_t r = 0; r < x.rows; ++r) {
      ++votes[r * stride + static_cast<std::size_t>(per_tree[r])];
    }
  }
  std::vector<int> out(x.rows, 0);
  for (std::size_t r = 0; r < x.rows; ++r) {
    const int* row = votes.data() + r * stride;
    int best = 0;
    for (std::size_t k = 1; k < stride; ++k) {
      if (row[k] > row[static_cast<std::size_t>(best)]) {
        best = static_cast<int>(k);
      }
    }
    out[r] = best;
  }
  return out;
}

std::vector<int> RandomForest::predict(const Matrix& x) const {
  return predict_batch(x);
}

}  // namespace pulpc::ml
