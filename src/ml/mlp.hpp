// Multi-layer-perceptron classifier: the "deep learning models able to
// enhance the prediction capabilities" the paper leaves to future work,
// scaled to this dataset (one hidden layer, softmax output, SGD with
// momentum, per-feature standardisation). Implemented from scratch like
// the rest of the ML substrate; compared against the paper's decision
// tree in bench/ablation_models.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/dataset.hpp"

namespace pulpc::ml {

struct MlpParams {
  int hidden = 32;        ///< hidden-layer width (ReLU)
  int epochs = 300;
  int batch = 32;
  double learning_rate = 0.05;
  double momentum = 0.9;
  double l2 = 1e-4;       ///< weight decay
  std::uint64_t seed = 1; ///< init + shuffling
};

class MlpClassifier {
 public:
  explicit MlpClassifier(MlpParams params = {}) : params_(params) {}

  /// Fit on a feature matrix and integer labels. Features are
  /// standardised internally (zero mean, unit variance per column).
  void fit(const Matrix& x, const std::vector<int>& y);
  void fit(const Matrix& x, const std::vector<int>& y,
           const std::vector<std::size_t>& rows);

  [[nodiscard]] int predict(std::span<const double> row) const;
  /// Thin wrapper over predict_batch (kept for source compatibility).
  [[nodiscard]] std::vector<int> predict(const Matrix& x) const;
  /// Batch prediction: the argmax class per row, scratch buffers reused
  /// across the batch instead of reallocated per row.
  [[nodiscard]] std::vector<int> predict_batch(const Matrix& x) const;

  /// Per-class probabilities for one row (softmax outputs), ordered as
  /// classes().
  [[nodiscard]] std::vector<double> predict_proba(
      std::span<const double> row) const;

  [[nodiscard]] bool trained() const noexcept { return !w1_.empty(); }
  [[nodiscard]] const std::vector<int>& classes() const noexcept {
    return classes_;
  }
  /// Mean cross-entropy on the training set after the final epoch.
  [[nodiscard]] double final_loss() const noexcept { return final_loss_; }

 private:
  void forward(std::span<const double> row, std::vector<double>& hidden,
               std::vector<double>& probs) const;

  MlpParams params_;
  std::size_t inputs_ = 0;
  std::vector<int> classes_;
  std::vector<double> mean_;
  std::vector<double> scale_;
  // Row-major weights: w1_[h * inputs_ + i], w2_[c * hidden + h].
  std::vector<double> w1_;
  std::vector<double> b1_;
  std::vector<double> w2_;
  std::vector<double> b2_;
  double final_loss_ = 0;
};

}  // namespace pulpc::ml
