#include "ml/cv.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "core/parallel.hpp"
#include "ml/metrics.hpp"

namespace pulpc::ml {

std::vector<std::vector<std::size_t>> stratified_kfold(
    const std::vector<int>& labels, unsigned folds, std::mt19937_64& rng) {
  if (folds < 2) {
    throw std::invalid_argument("stratified_kfold: folds must be >= 2");
  }
  std::map<int, std::vector<std::size_t>> by_class;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    by_class[labels[i]].push_back(i);
  }
  std::vector<std::vector<std::size_t>> out(folds);
  for (auto& [label, idx] : by_class) {
    std::shuffle(idx.begin(), idx.end(), rng);
    for (std::size_t i = 0; i < idx.size(); ++i) {
      out[i % folds].push_back(idx[i]);
    }
  }
  return out;
}

double EvalResult::accuracy_at(double tol) const {
  if (tolerances.empty()) return 0.0;
  std::size_t best = 0;
  for (std::size_t i = 1; i < tolerances.size(); ++i) {
    if (std::abs(tolerances[i] - tol) <
        std::abs(tolerances[best] - tol)) {
      best = i;
    }
  }
  return accuracy[best];
}

EvalResult evaluate(const Dataset& ds,
                    const std::vector<std::string>& columns,
                    const EvalOptions& opt) {
  if (ds.empty()) throw std::invalid_argument("evaluate: empty dataset");
  EvalResult res;
  res.columns = columns;
  res.tolerances = opt.tolerances.empty() ? default_tolerances()
                                          : opt.tolerances;
  res.accuracy.assign(res.tolerances.size(), 0.0);
  res.accuracy_std.assign(res.tolerances.size(), 0.0);
  res.importances.assign(columns.size(), 0.0);

  const Matrix x = ds.matrix(columns);
  const std::vector<int> y = ds.labels();
  const std::vector<Sample>& samples = ds.samples();

  // One independent task per repetition: each derives its RNG from
  // opt.seed + rep, so the fold assignment and tree seeds never depend
  // on execution order. Partials are accumulated per repetition and
  // reduced in repetition order below — floating-point sums are
  // bit-identical for every thread count (see DESIGN.md).
  struct RepPartial {
    std::vector<double> acc;          // per tolerance
    std::vector<double> importances;  // per column, summed over folds
    std::size_t fits = 0;
  };
  std::vector<RepPartial> partials(opt.repeats);
  core::ThreadPool pool(opt.threads);
  pool.parallel_for(opt.repeats, [&](std::size_t rep) {
    RepPartial& part = partials[rep];
    part.acc.assign(res.tolerances.size(), 0.0);
    part.importances.assign(columns.size(), 0.0);
    std::mt19937_64 rng(opt.seed + rep);
    const auto folds = stratified_kfold(y, opt.folds, rng);

    // Out-of-fold predictions for every sample of this repetition.
    std::vector<int> predictions(samples.size(), 0);
    for (const std::vector<std::size_t>& test : folds) {
      if (test.empty()) continue;
      std::vector<char> is_test(samples.size(), 0);
      for (const std::size_t i : test) is_test[i] = 1;
      std::vector<std::size_t> train;
      train.reserve(samples.size() - test.size());
      for (std::size_t i = 0; i < samples.size(); ++i) {
        if (is_test[i] == 0) train.push_back(i);
      }
      TreeParams tp = opt.tree;
      tp.seed = rng();
      DecisionTree tree(tp);
      tree.fit(x, y, train);
      for (const std::size_t i : test) {
        predictions[i] = tree.predict(std::span(x.row(i), x.cols));
      }
      const std::vector<double>& imp = tree.feature_importances();
      for (std::size_t c = 0; c < imp.size(); ++c) {
        part.importances[c] += imp[c];
      }
      ++part.fits;
    }

    for (std::size_t t = 0; t < res.tolerances.size(); ++t) {
      part.acc[t] = tolerance_accuracy(samples, predictions,
                                       res.tolerances[t]);
    }
  });

  std::vector<double> acc_sum(res.tolerances.size(), 0.0);
  std::vector<double> acc_sq(res.tolerances.size(), 0.0);
  std::size_t fits = 0;
  for (const RepPartial& part : partials) {
    for (std::size_t t = 0; t < res.tolerances.size(); ++t) {
      acc_sum[t] += part.acc[t];
      acc_sq[t] += part.acc[t] * part.acc[t];
    }
    for (std::size_t c = 0; c < part.importances.size(); ++c) {
      res.importances[c] += part.importances[c];
    }
    fits += part.fits;
  }

  const auto reps = static_cast<double>(opt.repeats);
  for (std::size_t t = 0; t < res.tolerances.size(); ++t) {
    const double mean = acc_sum[t] / reps;
    res.accuracy[t] = mean;
    const double var = std::max(0.0, acc_sq[t] / reps - mean * mean);
    res.accuracy_std[t] = std::sqrt(var);
  }
  if (fits > 0) {
    for (double& v : res.importances) v /= static_cast<double>(fits);
  }
  return res;
}

EvalResult evaluate_constant(const Dataset& ds, int constant_label,
                             const std::vector<double>& tolerances) {
  EvalResult res;
  res.tolerances = tolerances.empty() ? default_tolerances() : tolerances;
  const std::vector<int> preds(ds.size(), constant_label);
  for (const double t : res.tolerances) {
    res.accuracy.push_back(tolerance_accuracy(ds.samples(), preds, t));
  }
  res.accuracy_std.assign(res.tolerances.size(), 0.0);
  return res;
}

double GroupEvalResult::accuracy_at(double tol) const {
  if (tolerances.empty()) return 0.0;
  std::size_t best = 0;
  for (std::size_t i = 1; i < tolerances.size(); ++i) {
    if (std::abs(tolerances[i] - tol) <
        std::abs(tolerances[best] - tol)) {
      best = i;
    }
  }
  return accuracy[best];
}

GroupEvalResult evaluate_leave_one_group_out(
    const Dataset& ds, const std::vector<std::string>& columns,
    const std::vector<std::string>& groups,
    const std::vector<std::size_t>& test_pool, const EvalOptions& opt) {
  const std::vector<Sample>& samples = ds.samples();
  if (samples.empty()) {
    throw std::invalid_argument("evaluate_leave_one_group_out: empty dataset");
  }
  if (groups.size() != samples.size()) {
    throw std::invalid_argument(
        "evaluate_leave_one_group_out: groups.size() != dataset size");
  }
  for (const std::size_t i : test_pool) {
    if (i >= samples.size()) {
      throw std::invalid_argument(
          "evaluate_leave_one_group_out: test_pool index out of range");
    }
  }

  GroupEvalResult res;
  res.tolerances = opt.tolerances.empty() ? default_tolerances()
                                          : opt.tolerances;
  res.accuracy.assign(res.tolerances.size(), 0.0);

  // Fold per distinct group in the pool, in first-appearance order so the
  // reduction below is deterministic regardless of thread count.
  std::vector<std::string> fold_groups;
  std::map<std::string, std::vector<std::size_t>> pool_by_group;
  for (const std::size_t i : test_pool) {
    auto [it, inserted] = pool_by_group.try_emplace(groups[i]);
    if (inserted) fold_groups.push_back(groups[i]);
    it->second.push_back(i);
  }
  if (fold_groups.empty()) {
    throw std::invalid_argument(
        "evaluate_leave_one_group_out: empty test pool");
  }

  const Matrix x = ds.matrix(columns);
  const std::vector<int> y = ds.labels();

  struct FoldPartial {
    std::vector<double> acc;  // per tolerance
    std::size_t tested = 0;
  };
  std::vector<FoldPartial> partials(fold_groups.size());
  core::ThreadPool pool(opt.threads);
  pool.parallel_for(fold_groups.size(), [&](std::size_t f) {
    const std::string& held_out = fold_groups[f];
    const std::vector<std::size_t>& test = pool_by_group.at(held_out);
    std::vector<std::size_t> train;
    train.reserve(samples.size());
    for (std::size_t i = 0; i < samples.size(); ++i) {
      if (groups[i] != held_out) train.push_back(i);
    }
    TreeParams tp = opt.tree;
    tp.seed = opt.seed;
    DecisionTree tree(tp);
    tree.fit(x, y, train);
    std::vector<int> preds;
    preds.reserve(test.size());
    for (const std::size_t i : test) {
      preds.push_back(tree.predict(std::span(x.row(i), x.cols)));
    }
    FoldPartial& part = partials[f];
    part.tested = test.size();
    part.acc.reserve(res.tolerances.size());
    for (const double tol : res.tolerances) {
      part.acc.push_back(tolerance_accuracy(samples, test, preds, tol));
    }
  });

  // Test-size-weighted mean over folds, reduced in fold order.
  for (const FoldPartial& part : partials) {
    const auto w = static_cast<double>(part.tested);
    for (std::size_t t = 0; t < res.tolerances.size(); ++t) {
      res.accuracy[t] += part.acc[t] * w;
    }
    res.test_samples += part.tested;
  }
  res.groups = fold_groups.size();
  if (res.test_samples > 0) {
    const auto total = static_cast<double>(res.test_samples);
    for (double& a : res.accuracy) a /= total;
  }
  return res;
}

std::vector<std::pair<std::string, double>> rank_features(
    const Dataset& ds, const std::vector<std::string>& columns,
    const EvalOptions& opt) {
  const Matrix x = ds.matrix(columns);
  const std::vector<int> y = ds.labels();
  std::vector<double> acc(columns.size(), 0.0);
  const unsigned reps = std::max(1U, opt.repeats);
  for (unsigned rep = 0; rep < reps; ++rep) {
    TreeParams tp = opt.tree;
    tp.seed = opt.seed + rep;
    DecisionTree tree(tp);
    tree.fit(x, y);
    const std::vector<double>& imp = tree.feature_importances();
    for (std::size_t c = 0; c < imp.size(); ++c) acc[c] += imp[c];
  }
  std::vector<std::pair<std::string, double>> ranked;
  ranked.reserve(columns.size());
  for (std::size_t c = 0; c < columns.size(); ++c) {
    ranked.emplace_back(columns[c], acc[c] / reps);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return ranked;
}

}  // namespace pulpc::ml
