// Dataset container for the classification task. One sample = one
// (kernel, data type, problem size) instance carrying its feature vector,
// its minimum-energy label, and the measured energy/cycle vectors over
// all core-count configurations (needed for the paper's tolerance-aware
// accuracy metric). Supports column selection by feature name and CSV
// round-tripping (used to cache the expensive dataset build).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "kir/ir.hpp"

namespace pulpc::ml {

/// Version of the CSV cache schema (the meaning of the feature columns,
/// not just their names). save_csv stamps it, together with a
/// fingerprint of the header line, into a leading "# pulpclass-dataset"
/// comment; load_csv checks the stamp when present and rejects
/// mismatches, so a cache written by an older feature schema can no
/// longer load silently just because its header happens to parse. Bump
/// on any semantic change to the stored columns.
inline constexpr int kDatasetSchemaVersion = 1;

struct Sample {
  std::string kernel;
  std::string suite;
  kir::DType dtype = kir::DType::I32;
  std::uint32_t size_bytes = 0;
  int label = 0;                 ///< minimum-energy core count (1-based)
  std::vector<double> energy;    ///< energy [fJ] per core count (index k-1)
  std::vector<double> cycles;    ///< kernel-region cycles per core count
  std::vector<double> features;  ///< aligned with Dataset::columns()
};

/// Feature matrix in row-major order (the shape the tree consumes).
struct Matrix {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<double> data;  ///< rows * cols values

  [[nodiscard]] double at(std::size_t r, std::size_t c) const {
    return data[r * cols + c];
  }
  [[nodiscard]] const double* row(std::size_t r) const {
    return data.data() + r * cols;
  }
};

class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  /// Append a sample; its feature vector must match the column count.
  void add(Sample sample);

  [[nodiscard]] const std::vector<std::string>& columns() const noexcept {
    return columns_;
  }
  [[nodiscard]] const std::vector<Sample>& samples() const noexcept {
    return samples_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }

  /// Feature matrix restricted to the named columns (throws
  /// std::invalid_argument for unknown names).
  [[nodiscard]] Matrix matrix(const std::vector<std::string>& cols) const;
  /// Indices of the named columns in columns().
  [[nodiscard]] std::vector<std::size_t> column_indices(
      const std::vector<std::string>& cols) const;

  [[nodiscard]] std::vector<int> labels() const;

  /// Histogram of labels (index = core count, 0 unused).
  [[nodiscard]] std::vector<std::size_t> label_histogram(
      int max_label = 8) const;

  // CSV round-trip. save_csv writes a "# pulpclass-dataset v<N>
  // cols=<hex>" schema comment followed by the header (metadata columns,
  // the energy/cycle vectors, every feature column). load_csv tolerates
  // files without the comment (legacy caches, reported as
  // schema_version() == 0) and throws std::runtime_error when a present
  // comment names a different version or its header fingerprint does not
  // match the header actually read.
  void save_csv(std::ostream& out) const;
  [[nodiscard]] static Dataset load_csv(std::istream& in);
  void save_csv_file(const std::string& path) const;
  [[nodiscard]] static Dataset load_csv_file(const std::string& path);

  /// Schema version read by load_csv: kDatasetSchemaVersion for files
  /// carrying a valid schema comment, 0 for legacy files without one.
  /// In-memory datasets report the current version.
  [[nodiscard]] int schema_version() const noexcept {
    return schema_version_;
  }

 private:
  std::vector<std::string> columns_;
  std::vector<Sample> samples_;
  int schema_version_ = kDatasetSchemaVersion;
};

}  // namespace pulpc::ml
