#include "ml/mlp.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <random>
#include <stdexcept>

namespace pulpc::ml {

void MlpClassifier::fit(const Matrix& x, const std::vector<int>& y) {
  std::vector<std::size_t> rows(x.rows);
  std::iota(rows.begin(), rows.end(), 0);
  fit(x, y, rows);
}

void MlpClassifier::fit(const Matrix& x, const std::vector<int>& y,
                        const std::vector<std::size_t>& rows) {
  if (x.rows != y.size()) {
    throw std::invalid_argument("MlpClassifier::fit: label count mismatch");
  }
  if (rows.empty() || x.cols == 0) {
    throw std::invalid_argument("MlpClassifier::fit: empty training set");
  }
  inputs_ = x.cols;

  // Class set (stable order).
  classes_.clear();
  for (const std::size_t r : rows) {
    if (std::find(classes_.begin(), classes_.end(), y[r]) ==
        classes_.end()) {
      classes_.push_back(y[r]);
    }
  }
  std::sort(classes_.begin(), classes_.end());
  const std::size_t n_classes = classes_.size();
  const auto class_index = [&](int label) {
    return std::size_t(std::lower_bound(classes_.begin(), classes_.end(),
                                        label) -
                       classes_.begin());
  };

  // Standardisation statistics over the training rows.
  mean_.assign(inputs_, 0.0);
  scale_.assign(inputs_, 1.0);
  for (const std::size_t r : rows) {
    for (std::size_t c = 0; c < inputs_; ++c) mean_[c] += x.at(r, c);
  }
  for (double& m : mean_) m /= double(rows.size());
  std::vector<double> var(inputs_, 0.0);
  for (const std::size_t r : rows) {
    for (std::size_t c = 0; c < inputs_; ++c) {
      const double d = x.at(r, c) - mean_[c];
      var[c] += d * d;
    }
  }
  for (std::size_t c = 0; c < inputs_; ++c) {
    scale_[c] = std::sqrt(var[c] / double(rows.size()));
    if (scale_[c] < 1e-12) scale_[c] = 1.0;  // constant feature
  }

  const auto h = std::size_t(params_.hidden);
  std::mt19937_64 rng(params_.seed);
  std::normal_distribution<double> init(0.0, 1.0);
  w1_.assign(h * inputs_, 0.0);
  b1_.assign(h, 0.0);
  w2_.assign(n_classes * h, 0.0);
  b2_.assign(n_classes, 0.0);
  const double s1 = std::sqrt(2.0 / double(inputs_));
  const double s2 = std::sqrt(2.0 / double(h));
  for (double& w : w1_) w = init(rng) * s1;
  for (double& w : w2_) w = init(rng) * s2;

  std::vector<double> vw1(w1_.size(), 0.0);
  std::vector<double> vb1(b1_.size(), 0.0);
  std::vector<double> vw2(w2_.size(), 0.0);
  std::vector<double> vb2(b2_.size(), 0.0);

  std::vector<std::size_t> order = rows;
  std::vector<double> xin(inputs_);
  std::vector<double> hid(h);
  std::vector<double> probs(n_classes);
  std::vector<double> dhid(h);

  std::vector<double> gw1(w1_.size());
  std::vector<double> gb1(b1_.size());
  std::vector<double> gw2(w2_.size());
  std::vector<double> gb2(b2_.size());

  for (int epoch = 0; epoch < params_.epochs; ++epoch) {
    std::shuffle(order.begin(), order.end(), rng);
    double loss = 0;
    for (std::size_t start = 0; start < order.size();
         start += std::size_t(params_.batch)) {
      const std::size_t stop =
          std::min(order.size(), start + std::size_t(params_.batch));
      std::fill(gw1.begin(), gw1.end(), 0.0);
      std::fill(gb1.begin(), gb1.end(), 0.0);
      std::fill(gw2.begin(), gw2.end(), 0.0);
      std::fill(gb2.begin(), gb2.end(), 0.0);

      for (std::size_t s = start; s < stop; ++s) {
        const std::size_t r = order[s];
        for (std::size_t c = 0; c < inputs_; ++c) {
          xin[c] = (x.at(r, c) - mean_[c]) / scale_[c];
        }
        // Forward.
        for (std::size_t j = 0; j < h; ++j) {
          double a = b1_[j];
          for (std::size_t c = 0; c < inputs_; ++c) {
            a += w1_[j * inputs_ + c] * xin[c];
          }
          hid[j] = a > 0 ? a : 0;  // ReLU
        }
        double maxz = -1e300;
        for (std::size_t k = 0; k < n_classes; ++k) {
          double z = b2_[k];
          for (std::size_t j = 0; j < h; ++j) z += w2_[k * h + j] * hid[j];
          probs[k] = z;
          maxz = std::max(maxz, z);
        }
        double denom = 0;
        for (double& p : probs) {
          p = std::exp(p - maxz);
          denom += p;
        }
        for (double& p : probs) p /= denom;
        const std::size_t target = class_index(y[r]);
        loss += -std::log(std::max(probs[target], 1e-12));

        // Backward (softmax cross-entropy).
        std::fill(dhid.begin(), dhid.end(), 0.0);
        for (std::size_t k = 0; k < n_classes; ++k) {
          const double dz = probs[k] - (k == target ? 1.0 : 0.0);
          gb2[k] += dz;
          for (std::size_t j = 0; j < h; ++j) {
            gw2[k * h + j] += dz * hid[j];
            dhid[j] += dz * w2_[k * h + j];
          }
        }
        for (std::size_t j = 0; j < h; ++j) {
          if (hid[j] <= 0) continue;  // ReLU gate
          gb1[j] += dhid[j];
          for (std::size_t c = 0; c < inputs_; ++c) {
            gw1[j * inputs_ + c] += dhid[j] * xin[c];
          }
        }
      }

      // SGD with momentum + weight decay.
      const double bs = double(stop - start);
      const double lr = params_.learning_rate;
      const auto step = [&](std::vector<double>& w, std::vector<double>& v,
                            const std::vector<double>& g) {
        for (std::size_t i = 0; i < w.size(); ++i) {
          v[i] = params_.momentum * v[i] -
                 lr * (g[i] / bs + params_.l2 * w[i]);
          w[i] += v[i];
        }
      };
      step(w1_, vw1, gw1);
      step(b1_, vb1, gb1);
      step(w2_, vw2, gw2);
      step(b2_, vb2, gb2);
    }
    final_loss_ = loss / double(order.size());
  }
}

void MlpClassifier::forward(std::span<const double> row,
                            std::vector<double>& hidden,
                            std::vector<double>& probs) const {
  const auto h = std::size_t(params_.hidden);
  hidden.assign(h, 0.0);
  for (std::size_t j = 0; j < h; ++j) {
    double a = b1_[j];
    for (std::size_t c = 0; c < inputs_; ++c) {
      a += w1_[j * inputs_ + c] * (row[c] - mean_[c]) / scale_[c];
    }
    hidden[j] = a > 0 ? a : 0;
  }
  probs.assign(classes_.size(), 0.0);
  double maxz = -1e300;
  for (std::size_t k = 0; k < classes_.size(); ++k) {
    double z = b2_[k];
    for (std::size_t j = 0; j < h; ++j) z += w2_[k * h + j] * hidden[j];
    probs[k] = z;
    maxz = std::max(maxz, z);
  }
  double denom = 0;
  for (double& p : probs) {
    p = std::exp(p - maxz);
    denom += p;
  }
  for (double& p : probs) p /= denom;
}

std::vector<double> MlpClassifier::predict_proba(
    std::span<const double> row) const {
  if (!trained()) {
    throw std::logic_error("MlpClassifier::predict_proba: not trained");
  }
  std::vector<double> hidden;
  std::vector<double> probs;
  forward(row, hidden, probs);
  return probs;
}

int MlpClassifier::predict(std::span<const double> row) const {
  const std::vector<double> probs = predict_proba(row);
  const auto best =
      std::max_element(probs.begin(), probs.end()) - probs.begin();
  return classes_[std::size_t(best)];
}

std::vector<int> MlpClassifier::predict_batch(const Matrix& x) const {
  if (!trained()) {
    throw std::logic_error("MlpClassifier::predict_batch: not trained");
  }
  std::vector<int> out;
  out.reserve(x.rows);
  std::vector<double> hidden;
  std::vector<double> probs;
  for (std::size_t r = 0; r < x.rows; ++r) {
    forward(std::span(x.row(r), x.cols), hidden, probs);
    const auto best =
        std::max_element(probs.begin(), probs.end()) - probs.begin();
    out.push_back(classes_[std::size_t(best)]);
  }
  return out;
}

std::vector<int> MlpClassifier::predict(const Matrix& x) const {
  return predict_batch(x);
}

}  // namespace pulpc::ml
