#include "ml/flat.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <new>
#include <iostream>
#include <limits>
#include <stdexcept>

namespace pulpc::ml {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Row-block size for ensemble batches: 512 double rows of typical
/// width (~20 features) is ~80 KB, comfortably L2-resident.
constexpr std::size_t kRowBlock = 512;

/// Monotone (order-preserving) integer key of a double row value:
/// key(a) <= key(b) under UNSIGNED comparison iff a <= b under double
/// comparison, for every pair the walk can meet. The standard IEEE-754
/// bit trick (positives shift into the upper half, negatives flip)
/// handles ±inf and subnormals; -0 collapses onto +0 first so the two
/// zeros stay equal; NaN pins to the maximum key, above every
/// threshold key, so NaN rows fail `v <= thr` and take the right edge —
/// exactly what DecisionTree::predict does.
inline std::uint64_t walk_key(double v) {
  std::uint64_t b = 0;
  std::memcpy(&b, &v, sizeof b);
  // Branchless on purpose: encode runs once per matrix value, and the
  // ternaries compile to cmovs/blends that auto-vectorize. Negatives
  // map through two's-complement negation (not plain ~b) so that -0
  // lands exactly on +0's key — the one pair of distinct bit patterns
  // that compares equal as doubles.
  const bool nan = (b & 0x7FFFFFFFFFFFFFFFull) > 0x7FF0000000000000ull;
  const std::uint64_t key =
      (b >> 63) != 0 ? ~b + 1 : b | (std::uint64_t{1} << 63);
  return nan ? std::numeric_limits<std::uint64_t>::max() : key;
}

/// Threshold-side key. A NaN threshold (never produced by training,
/// but representable) fails `v <= thr` for every v, so it keys below
/// every value key; NaN values still key to the maximum, above it.
inline std::uint64_t walk_threshold_key(double t) {
  return std::isnan(t) ? 0 : walk_key(t);
}
/// Quantized thresholds are already integers; compare as-is.
inline std::int16_t walk_threshold_key(std::int16_t t) { return t; }

/// Encode a run of doubles onto the walk-key space.
inline void encode_keys(const double* data, std::size_t count,
                        std::uint64_t* out) {
  for (std::size_t i = 0; i < count; ++i) out[i] = walk_key(data[i]);
}

/// Record at byte offset `off` from the array base (offsets are record
/// indices pre-shifted by R::kShift, so the add folds into the load's
/// addressing mode).
template <typename R>
inline const R& node_at(const R* base, std::uint32_t off) {
  return *reinterpret_cast<const R*>(reinterpret_cast<const char*>(base) +
                                     off);
}

/// Walk one row from the root record until the traversal parks on a
/// self-edge; returns the final record's INDEX. The comparison is
/// spelled !(v <= thr) — the exact negation DecisionTree::predict
/// branches on — so NaN values take the same (right) edge in both
/// engines. The feature index and left offset arrive in one load, the
/// comparison picks left or right with a conditional move: the next
/// load address never depends on a branch. Terminates because child
/// links point at the node itself or strictly forward (construction
/// invariant, enforced by load()).
template <typename R, typename V>
inline std::uint32_t walk_one(const R* nodes, const V* row) {
  std::uint32_t at = 0;
  for (;;) {
    const R& n = node_at(nodes, at);
    // Both select arms are halves of the one children qword, so the
    // ternary if-converts to a register cmov (see Decide).
    const std::uint64_t ch = n.children;
    const std::uint32_t left = static_cast<std::uint32_t>(ch);
    const std::uint32_t right = static_cast<std::uint32_t>(ch >> 32);
    const std::uint32_t nx =
        !(row[n.feat / detail::kLane] <= n.thr) ? right : left;
    if (nx == at) return at >> R::kShift;
    at = nx;
  }
}

/// One row-group (kLane rows) in flight, stepped in lockstep for the
/// tree's full depth. Each row's traversal is a chain of dependent
/// loads; one chain serialises on load latency, kLane independent
/// chains overlap. The loop body has no data-dependent branches (the
/// comparison becomes a cmov), so nothing mispredicts: parked chains
/// keep re-selecting their self-edge until the step count runs out.
/// Retiring chains individually would walk ~1/3 fewer steps (mean
/// leaf depth is about 2/3 of a group's deepest leaf) but costs a
/// mispredicted branch per retire, which measures strictly slower —
/// see DESIGN "Flat inference engine".
///
/// `grp` is the group's lane-interleaved values (feature f of lane b
/// at grp[f*kLane + b], with feat pre-scaled): every chain addresses
/// its value off the one shared base with a constant lane offset, so
/// no per-chain row pointers exist to spill.
template <std::size_t B, typename R, typename V>
inline void walk_block(const R* nodes, const V* grp, std::uint32_t* at,
                       int steps) {
  static_assert(B == detail::kLane);
  for (std::size_t b = 0; b < B; ++b) at[b] = 0;
#pragma GCC unroll 4
  for (int d = 0; d < steps; ++d) {
    for (std::size_t b = 0; b < B; ++b) {
      const R& n = node_at(nodes, at[b]);
      const std::uint64_t ch = n.children;
      const std::uint32_t left = static_cast<std::uint32_t>(ch);
      const std::uint32_t right = static_cast<std::uint32_t>(ch >> 32);
      at[b] = !(grp[n.feat + b] <= n.thr) ? right : left;
    }
  }
}

/// Batch driver over a lane-interleaved value block: one walk_block
/// per row-group, leaf labels scattered to out. A partial final group
/// walks its unused tail lanes on whatever the buffer holds (any
/// value keys to a valid child; the walk still terminates) and their
/// labels are simply not read out.
template <typename R, typename V>
[[gnu::noinline]] void batch_walk(const R* nodes, const std::int32_t* label, int depth,
                const V* ilv, std::size_t rows, std::size_t stride,
                int* out) {
  constexpr std::size_t B = detail::kLane;
  const std::size_t gbytes = stride * B * sizeof(V);
  std::uint32_t at[B];
  for (std::size_t g = 0; g * B < rows; ++g) {
    const V* grp = ilv + g * stride * B;
    // The next group's value slice was last touched a whole
    // tree-pass ago; pull its lines back toward L1 while this
    // group's chains are in flight so the first-touch value loads
    // of the next call don't stall on L2.
    if ((g + 1) * B < rows) {
      const char* nx = reinterpret_cast<const char*>(grp) + gbytes;
      for (std::size_t o = 0; o < gbytes; o += 64) __builtin_prefetch(nx + o);
    }
    walk_block<B>(nodes, grp, at, depth);
    const std::size_t nb = std::min(B, rows - g * B);
    for (std::size_t b = 0; b < nb; ++b) {
      out[g * B + b] = label[at[b] >> R::kShift];
    }
  }
}

/// Rows of a walk-key block in the lane-interleaved layout batch_walk
/// consumes: feature f of block row r lands at
/// out[(r/kLane)*stride*kLane + f*kLane + r%kLane]. The buffer must
/// hold ceil(rows/kLane) full groups.
inline void encode_keys_interleaved(const double* data, std::size_t rows,
                                    std::size_t stride, std::uint64_t* out) {
  constexpr std::size_t B = detail::kLane;
  for (std::size_t r = 0; r < rows; ++r) {
    const double* src = data + r * stride;
    std::uint64_t* dst = out + (r / B) * stride * B + r % B;
    for (std::size_t f = 0; f < stride; ++f) {
      dst[f * B] = walk_key(src[f]);
    }
  }
}

/// Quantized counterpart: rows [r0, r0+rows) of x onto the int16 grid,
/// lane-interleaved.
void encode_quant_interleaved(const Quantizer& quant, const Matrix& x,
                              std::size_t r0, std::size_t rows,
                              std::int16_t* out) {
  constexpr std::size_t B = detail::kLane;
  const std::size_t nf = quant.features();
  for (std::size_t r = 0; r < rows; ++r) {
    const double* src = x.row(r0 + r);
    std::int16_t* dst = out + (r / B) * nf * B + r % B;
    for (std::size_t f = 0; f < nf; ++f) {
      dst[f * B] = quant.encode(f, src[f]);
    }
  }
}

/// Interleaved group count covering `rows`.
inline std::size_t lane_groups(std::size_t rows) {
  return (rows + detail::kLane - 1) / detail::kLane;
}

/// Cache-line-aligned scratch for interleaved value blocks. A group's
/// per-feature slab is kLane values (64 bytes for walk keys); aligning
/// the buffer keeps each slab on one line instead of straddling two.
template <typename V>
struct AlignedBuf {
  explicit AlignedBuf(std::size_t n)
      : p(static_cast<V*>(::operator new(n * sizeof(V),
                                         std::align_val_t(64)))) {}
  ~AlignedBuf() { ::operator delete(p, std::align_val_t(64)); }
  AlignedBuf(const AlignedBuf&) = delete;
  AlignedBuf& operator=(const AlignedBuf&) = delete;
  [[nodiscard]] V* data() const noexcept { return p; }
  V* p;
};

/// Forest batch driver: like batch_walk, but folds each chain's leaf
/// label straight into the per-row vote counters instead of staging
/// labels through a scratch array.
template <typename R, typename V>
[[gnu::noinline]] void batch_walk_vote(const R* nodes, const std::int32_t* label, int depth,
                     const V* ilv, std::size_t rows, std::size_t stride,
                     int* votes, std::size_t vstride) {
  constexpr std::size_t B = detail::kLane;
  const std::size_t gbytes = stride * B * sizeof(V);
  std::uint32_t at[B];
  for (std::size_t g = 0; g * B < rows; ++g) {
    const V* grp = ilv + g * stride * B;
    if ((g + 1) * B < rows) {
      const char* nx = reinterpret_cast<const char*>(grp) + gbytes;
      for (std::size_t o = 0; o < gbytes; o += 64) __builtin_prefetch(nx + o);
    }
    walk_block<B>(nodes, grp, at, depth);
    const std::size_t nb = std::min(B, rows - g * B);
    for (std::size_t b = 0; b < nb; ++b) {
      ++votes[(g * B + b) * vstride +
              static_cast<std::size_t>(label[at[b] >> R::kShift])];
    }
  }
}

/// Build the packed traversal records from SoA node storage. Both
/// children become pre-shifted byte offsets sharing one qword (see
/// Decide).
template <typename R, typename T>
void pack_walk(const std::vector<std::int32_t>& feat, const std::vector<T>& thr,
               const std::vector<std::int32_t>& children,
               std::vector<R>* decide) {
  const std::size_t n = feat.size();
  decide->assign(n, R{});
  R* base = decide->data();
  for (std::size_t i = 0; i < n; ++i) {
    const auto left =
        static_cast<std::uint64_t>(children[2 * i]) << R::kShift;
    const auto right =
        static_cast<std::uint64_t>(children[2 * i + 1]) << R::kShift;
    base[i].children = left | (right << 32);
    base[i].thr = walk_threshold_key(thr[i]);
    base[i].feat =
        static_cast<std::uint32_t>(feat[i]) * detail::kLane;
  }
}

/// First-max argmax over per-row vote counts: identical tie-breaking to
/// RandomForest::predict (ties go to the smaller label).
void vote_argmax(const std::vector<int>& votes, std::size_t rows,
                 std::size_t stride, std::vector<int>* out) {
  out->assign(rows, 0);
  for (std::size_t r = 0; r < rows; ++r) {
    const int* row = votes.data() + r * stride;
    int best = 0;
    for (std::size_t k = 1; k < stride; ++k) {
      if (row[k] > row[static_cast<std::size_t>(best)]) {
        best = static_cast<int>(k);
      }
    }
    (*out)[r] = best;
  }
}

}  // namespace

// ---- FlatTree -----------------------------------------------------------

FlatTree::FlatTree(const DecisionTree& tree) {
  if (!tree.trained()) {
    throw std::invalid_argument("FlatTree: tree is not trained");
  }
  const std::vector<DecisionTree::Node>& nodes = tree.nodes();
  n_features_ = tree.feature_importances().size();

  // BFS from the root: siblings end up adjacent, shallow (hot) levels
  // contiguous at the front. Unreachable nodes are dropped.
  std::vector<std::int32_t> order;   ///< new index -> old index
  std::vector<std::int32_t> level;   ///< new index -> depth
  std::vector<std::int32_t> new_of(nodes.size(), -1);
  order.push_back(0);
  level.push_back(0);
  new_of[0] = 0;
  for (std::size_t head = 0; head < order.size(); ++head) {
    const DecisionTree::Node& nd =
        nodes[static_cast<std::size_t>(order[head])];
    if (nd.feature < 0) continue;
    for (const int child : {nd.left, nd.right}) {
      if (child < 0 || new_of[static_cast<std::size_t>(child)] >= 0) {
        continue;
      }
      new_of[static_cast<std::size_t>(child)] =
          static_cast<std::int32_t>(order.size());
      order.push_back(child);
      level.push_back(level[head] + 1);
    }
  }

  const std::size_t n = order.size();
  feature_.resize(n);
  threshold_.resize(n);
  children_.resize(2 * n);
  label_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const DecisionTree::Node& nd =
        nodes[static_cast<std::size_t>(order[i])];
    label_[i] = nd.label;
    depth_ = std::max(depth_, static_cast<int>(level[i]));
    if (nd.feature < 0) {
      // Leaf: any value goes "left" into the node itself, so the
      // fixed-depth walk parks here.
      feature_[i] = 0;
      threshold_[i] = kInf;
      children_[2 * i] = static_cast<std::int32_t>(i);
      children_[2 * i + 1] = static_cast<std::int32_t>(i);
    } else {
      feature_[i] = nd.feature;
      threshold_[i] = nd.threshold;
      // A negative child in the source tree makes predict() stop at
      // this node and answer its majority label; a self-edge replicates
      // that exactly under the fixed-depth walk.
      children_[2 * i] =
          nd.left >= 0 ? new_of[static_cast<std::size_t>(nd.left)]
                       : static_cast<std::int32_t>(i);
      children_[2 * i + 1] =
          nd.right >= 0 ? new_of[static_cast<std::size_t>(nd.right)]
                        : static_cast<std::int32_t>(i);
    }
  }
  build_walk();
}

void FlatTree::build_walk() {
  pack_walk(feature_, threshold_, children_, &decide_);
}

bool operator==(const FlatTree& a, const FlatTree& b) {
  return a.depth_ == b.depth_ && a.n_features_ == b.n_features_ &&
         a.feature_ == b.feature_ && a.threshold_ == b.threshold_ &&
         a.children_ == b.children_ && a.label_ == b.label_;
}

int FlatTree::predict(std::span<const double> row) const {
  if (feature_.empty()) {
    throw std::logic_error("FlatTree::predict: not trained");
  }
  std::uint64_t stack_keys[64];
  std::vector<std::uint64_t> heap_keys;
  std::uint64_t* keys = stack_keys;
  if (n_features_ > std::size(stack_keys)) {
    heap_keys.resize(n_features_);
    keys = heap_keys.data();
  }
  encode_keys(row.data(), n_features_, keys);
  return label_[walk_one(decide_.data(), keys)];
}

void FlatTree::predict_batch(const Matrix& x, std::span<int> out) const {
  if (feature_.empty()) {
    throw std::logic_error("FlatTree::predict_batch: not trained");
  }
  if (out.size() < x.rows) {
    throw std::invalid_argument("FlatTree::predict_batch: out too small");
  }
  AlignedBuf<std::uint64_t> keys(lane_groups(x.rows) * detail::kLane *
                                 x.cols);
  encode_keys_interleaved(x.data.data(), x.rows, x.cols, keys.data());
  batch_walk(decide_.data(), label_.data(), depth_, keys.data(), x.rows,
             x.cols, out.data());
}

std::vector<int> FlatTree::predict_batch(const Matrix& x) const {
  std::vector<int> out(x.rows);
  predict_batch(x, out);
  return out;
}

void FlatTree::save(std::ostream& out) const {
  if (feature_.empty()) {
    throw std::logic_error("FlatTree::save: not trained");
  }
  out << "pulpc-flat v1\n";
  out << feature_.size() << ' ' << n_features_ << ' ' << depth_ << '\n';
  out.precision(17);
  for (std::size_t i = 0; i < feature_.size(); ++i) {
    // Leaves (infinite threshold) serialise with a flag instead of the
    // non-finite value, so the format never depends on the stream
    // library round-tripping "inf".
    const bool leaf = !std::isfinite(threshold_[i]);
    out << (leaf ? 1 : 0) << ' ' << feature_[i] << ' '
        << (leaf ? 0.0 : threshold_[i]) << ' ' << children_[2 * i] << ' '
        << children_[2 * i + 1] << ' ' << label_[i] << '\n';
  }
}

FlatTree FlatTree::load(std::istream& in) {
  std::string magic;
  std::string version;
  in >> magic >> version;
  if (magic != "pulpc-flat" || version != "v1") {
    throw std::runtime_error("FlatTree::load: bad header");
  }
  std::size_t n = 0;
  FlatTree t;
  // The node-count cap keeps a corrupted shape line a clean parse error
  // instead of a giant allocation.
  constexpr std::size_t kMaxNodes = std::size_t{1} << 26;
  if (!(in >> n >> t.n_features_ >> t.depth_) || n == 0 || n > kMaxNodes ||
      t.n_features_ == 0 || t.n_features_ > kMaxNodes || t.depth_ < 0 ||
      static_cast<std::size_t>(t.depth_) > n) {
    throw std::runtime_error("FlatTree::load: bad shape line");
  }
  t.feature_.resize(n);
  t.threshold_.resize(n);
  t.children_.resize(2 * n);
  t.label_.resize(n);
  const auto limit = static_cast<std::int32_t>(n);
  for (std::size_t i = 0; i < n; ++i) {
    int leaf = 0;
    if (!(in >> leaf >> t.feature_[i] >> t.threshold_[i] >>
          t.children_[2 * i] >> t.children_[2 * i + 1] >> t.label_[i])) {
      throw std::runtime_error("FlatTree::load: truncated node list");
    }
    if (leaf != 0 && leaf != 1) {
      throw std::runtime_error("FlatTree::load: bad leaf flag");
    }
    if (leaf) t.threshold_[i] = kInf;
    if (t.feature_[i] < 0 ||
        static_cast<std::size_t>(t.feature_[i]) >= t.n_features_ ||
        t.children_[2 * i] < 0 || t.children_[2 * i] >= limit ||
        t.children_[2 * i + 1] < 0 || t.children_[2 * i + 1] >= limit) {
      throw std::runtime_error("FlatTree::load: node out of range");
    }
    // BFS layout invariant: every child link points at the node itself
    // (a park edge: leaves on both sides, clipped subtrees on one) or
    // strictly forward. This is what guarantees every traversal
    // terminates — indices can only increase until they repeat — so the
    // walk kernels need no depth bound even on adversarial files.
    const auto self = static_cast<std::int32_t>(i);
    if (t.children_[2 * i] < self || t.children_[2 * i + 1] < self ||
        (leaf && (t.children_[2 * i] != self ||
                  t.children_[2 * i + 1] != self))) {
      throw std::runtime_error("FlatTree::load: non-forward child link");
    }
  }
  t.build_walk();
  return t;
}

// ---- FlatForest ---------------------------------------------------------

FlatForest::FlatForest(const RandomForest& forest) {
  if (!forest.trained()) {
    throw std::invalid_argument("FlatForest: forest is not trained");
  }
  trees_.reserve(forest.tree_count());
  for (const DecisionTree& t : forest.trees()) {
    trees_.emplace_back(t);
    for (const std::int32_t l : trees_.back().labels()) {
      max_label_ = std::max(max_label_, static_cast<int>(l));
    }
  }
}

int FlatForest::predict(std::span<const double> row) const {
  if (trees_.empty()) {
    throw std::logic_error("FlatForest::predict: not trained");
  }
  // Encode the row once; every member tree walks the same key row.
  std::uint64_t stack_keys[64];
  std::vector<std::uint64_t> heap_keys;
  std::uint64_t* keys = stack_keys;
  const std::size_t nf = trees_.front().feature_count();
  if (nf > std::size(stack_keys)) {
    heap_keys.resize(nf);
    keys = heap_keys.data();
  }
  encode_keys(row.data(), nf, keys);
  std::vector<int> votes(static_cast<std::size_t>(max_label_) + 1, 0);
  for (const FlatTree& t : trees_) {
    const std::uint32_t leaf = walk_one(t.decide_.data(), keys);
    ++votes[static_cast<std::size_t>(t.label_[leaf])];
  }
  int best = 0;
  for (std::size_t k = 1; k < votes.size(); ++k) {
    if (votes[k] > votes[static_cast<std::size_t>(best)]) {
      best = static_cast<int>(k);
    }
  }
  return best;
}

std::vector<int> FlatForest::predict_batch(const Matrix& x) const {
  if (trees_.empty()) {
    throw std::logic_error("FlatForest::predict_batch: not trained");
  }
  const std::size_t stride = static_cast<std::size_t>(max_label_) + 1;
  std::vector<int> votes(x.rows * stride, 0);
  // Block over rows so one block's encoded keys stay cache-resident
  // while every member tree walks it (streaming the whole matrix once
  // per tree would pull rows*trees worth of memory traffic). The block
  // buffer is reused; a shorter final block leaves stale tail lanes,
  // which the walk traverses but never reads labels from.
  AlignedBuf<std::uint64_t> ibuf(lane_groups(std::min(x.rows, kRowBlock)) *
                                 detail::kLane * x.cols);
  for (std::size_t r0 = 0; r0 < x.rows; r0 += kRowBlock) {
    const std::size_t nb = std::min(kRowBlock, x.rows - r0);
    encode_keys_interleaved(x.data.data() + r0 * x.cols, nb, x.cols,
                            ibuf.data());
    int* bvotes = votes.data() + r0 * stride;
    for (const FlatTree& a : trees_) {
      batch_walk_vote(a.decide_.data(), a.label_.data(), a.depth_,
                      ibuf.data(), nb, x.cols, bvotes, stride);
    }
  }
  std::vector<int> out;
  vote_argmax(votes, x.rows, stride, &out);
  return out;
}

// ---- Quantizer ----------------------------------------------------------

Quantizer::Quantizer(const std::vector<std::vector<double>>& values) {
  const std::size_t nf = values.size();
  ref_.resize(nf);
  step_.resize(nf);
  inv_step_.resize(nf);
  for (std::size_t f = 0; f < nf; ++f) {
    double lo = kInf;
    double hi = -kInf;
    for (const double v : values[f]) {
      if (!std::isfinite(v)) continue;
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    if (!(lo <= hi)) {  // no finite values at all
      lo = 0.0;
      hi = 0.0;
    }
    // 60000 cells across the covered range leaves ~2700 cells of
    // headroom on either side before the int16 clamp saturates, so
    // mildly out-of-range values still quantize monotonically.
    const double range = hi - lo;
    step_[f] = range > 0 ? range / 60000.0 : 1.0;
    inv_step_[f] = 1.0 / step_[f];
    ref_[f] = (lo + hi) / 2.0;
  }
}

std::int16_t Quantizer::encode(std::size_t f, double v) const {
  const double q = (v - ref_[f]) * inv_step_[f];
  // NaN and -inf both land on the bottom clamp; +inf on the top. The
  // ordering of encoded values is monotone in v for finite inputs.
  if (!(q > -32768.0)) return std::numeric_limits<std::int16_t>::min();
  if (q >= 32767.0) return std::numeric_limits<std::int16_t>::max();
  return static_cast<std::int16_t>(std::lround(q));
}

void Quantizer::encode_row(std::span<const double> row,
                           std::int16_t* out) const {
  const std::size_t nf = ref_.size();
  for (std::size_t f = 0; f < nf; ++f) out[f] = encode(f, row[f]);
}

// ---- FlatTreeQuant ------------------------------------------------------

namespace {

/// Collect per-feature finite threshold values of one flat tree into
/// `vals` (shared by the tree- and forest-level quantizer builds).
void collect_thresholds(const FlatTree& tree,
                        std::vector<std::vector<double>>* vals) {
  const std::vector<std::int32_t>& feats = tree.features();
  const std::vector<double>& thrs = tree.thresholds();
  for (std::size_t i = 0; i < feats.size(); ++i) {
    if (std::isfinite(thrs[i])) {
      (*vals)[static_cast<std::size_t>(feats[i])].push_back(thrs[i]);
    }
  }
}

void collect_calibration(const Matrix& calib, std::size_t nf,
                         std::vector<std::vector<double>>* vals) {
  if (calib.cols != nf) {
    throw std::invalid_argument(
        "Quantizer: calibration matrix column count does not match the "
        "tree's feature count");
  }
  for (std::size_t r = 0; r < calib.rows; ++r) {
    for (std::size_t f = 0; f < nf; ++f) {
      (*vals)[f].push_back(calib.at(r, f));
    }
  }
}

/// Quantize one flat tree's thresholds onto an already-built grid.
/// Leaves (infinite thresholds) pin to the top clamp: every encoded
/// value compares <= it, so the walk keeps self-looping left.
std::vector<std::int16_t> quantize_thresholds(const FlatTree& tree,
                                              const Quantizer& quant) {
  const std::vector<std::int32_t>& feats = tree.features();
  const std::vector<double>& thrs = tree.thresholds();
  std::vector<std::int16_t> out(thrs.size());
  for (std::size_t i = 0; i < thrs.size(); ++i) {
    out[i] = std::isfinite(thrs[i])
                 ? quant.encode(static_cast<std::size_t>(feats[i]), thrs[i])
                 : std::numeric_limits<std::int16_t>::max();
  }
  return out;
}

/// Walk the EXACT tree while checking every comparison on that path
/// against its quantized counterpart. Returns true when any comparison
/// disagrees — the witness for a possible prediction divergence: if no
/// comparison on the exact path flips, the quantized walk follows the
/// identical path and cannot diverge. Updates gap/step watermarks for
/// the report.
bool flipped_on_exact_path(const FlatTree& exact,
                           const std::vector<std::int16_t>& qthr,
                           const Quantizer& quant,
                           std::span<const double> row,
                           const std::int16_t* qrow, QuantDivergence* d) {
  const std::vector<std::int32_t>& feat = exact.features();
  const std::vector<double>& thr = exact.thresholds();
  const std::vector<std::int32_t>& child = exact.children();
  bool flip = false;
  std::uint32_t at = 0;
  for (int depth = 0; depth < exact.depth(); ++depth) {
    const std::uint32_t i = at;
    const auto f = static_cast<std::size_t>(feat[i]);
    if (std::isfinite(thr[i])) {
      const double v = row[f];
      const bool exact_right = !(v <= thr[i]);
      const bool quant_right = !(qrow[f] <= qthr[i]);
      if (exact_right != quant_right) {
        flip = true;
        d->max_step = std::max(d->max_step, quant.step(f));
        if (std::isfinite(v)) {
          d->max_flip_gap = std::max(d->max_flip_gap, std::abs(v - thr[i]));
        }
      }
      at = static_cast<std::uint32_t>(child[2 * i + (exact_right ? 1 : 0)]);
    } else {
      at = static_cast<std::uint32_t>(child[2 * i]);
    }
  }
  return flip;
}

}  // namespace

FlatTreeQuant::FlatTreeQuant(const FlatTree& tree, const Matrix* calibration) {
  if (!tree.trained()) {
    throw std::invalid_argument("FlatTreeQuant: tree is not trained");
  }
  std::vector<std::vector<double>> vals(tree.feature_count());
  collect_thresholds(tree, &vals);
  if (calibration != nullptr) {
    collect_calibration(*calibration, tree.feature_count(), &vals);
  }
  quant_ = Quantizer(vals);
  feature_ = tree.feature_;
  children_ = tree.children_;
  label_ = tree.label_;
  depth_ = tree.depth_;
  threshold_ = quantize_thresholds(tree, quant_);
  pack_walk(feature_, threshold_, children_, &decide_);
}

int FlatTreeQuant::predict(std::span<const double> row) const {
  if (feature_.empty()) {
    throw std::logic_error("FlatTreeQuant::predict: not trained");
  }
  std::vector<std::int16_t> qrow(quant_.features());
  quant_.encode_row(row, qrow.data());
  return label_[walk_one(decide_.data(), qrow.data())];
}

std::vector<int> FlatTreeQuant::predict_batch(const Matrix& x) const {
  if (feature_.empty()) {
    throw std::logic_error("FlatTreeQuant::predict_batch: not trained");
  }
  const std::size_t nf = quant_.features();
  AlignedBuf<std::int16_t> enc(lane_groups(x.rows) * detail::kLane * nf);
  encode_quant_interleaved(quant_, x, 0, x.rows, enc.data());
  std::vector<int> out(x.rows);
  batch_walk(decide_.data(), label_.data(), depth_, enc.data(), x.rows, nf,
             out.data());
  return out;
}

QuantDivergence FlatTreeQuant::measure(const FlatTree& exact,
                                       const Matrix& x) const {
  if (exact.node_count() != node_count() ||
      exact.feature_count() != quant_.features() || x.cols != quant_.features()) {
    throw std::invalid_argument("FlatTreeQuant::measure: shape mismatch");
  }
  QuantDivergence d;
  d.rows = x.rows;
  const std::vector<int> exact_labels = exact.predict_batch(x);
  const std::vector<int> quant_labels = predict_batch(x);
  std::vector<std::int16_t> qrow(quant_.features());
  for (std::size_t r = 0; r < x.rows; ++r) {
    const std::span<const double> row(x.row(r), x.cols);
    quant_.encode_row(row, qrow.data());
    if (flipped_on_exact_path(exact, threshold_, quant_, row, qrow.data(),
                              &d)) {
      ++d.flipped;
    }
    if (exact_labels[r] != quant_labels[r]) ++d.diverged;
  }
  return d;
}

// ---- FlatForestQuant ----------------------------------------------------

FlatForestQuant::FlatForestQuant(const FlatForest& forest,
                                 const Matrix* calibration) {
  if (!forest.trained()) {
    throw std::invalid_argument("FlatForestQuant: forest is not trained");
  }
  n_features_ = forest.trees().front().feature_count();
  std::vector<std::vector<double>> vals(n_features_);
  for (const FlatTree& t : forest.trees()) collect_thresholds(t, &vals);
  if (calibration != nullptr) {
    collect_calibration(*calibration, n_features_, &vals);
  }
  quant_ = Quantizer(vals);
  trees_.reserve(forest.tree_count());
  for (const FlatTree& t : forest.trees()) {
    Nodes n;
    n.feature = t.feature_;
    n.children = t.children_;
    n.label = t.label_;
    n.depth = t.depth_;
    n.threshold = quantize_thresholds(t, quant_);
    pack_walk(n.feature, n.threshold, n.children, &n.decide);
    trees_.push_back(std::move(n));
    for (const std::int32_t l : t.labels()) {
      max_label_ = std::max(max_label_, static_cast<int>(l));
    }
  }
}

int FlatForestQuant::predict(std::span<const double> row) const {
  if (trees_.empty()) {
    throw std::logic_error("FlatForestQuant::predict: not trained");
  }
  std::vector<std::int16_t> qrow(n_features_);
  quant_.encode_row(row, qrow.data());
  std::vector<int> votes(static_cast<std::size_t>(max_label_) + 1, 0);
  for (const Nodes& t : trees_) {
    const std::uint32_t leaf = walk_one(t.decide.data(), qrow.data());
    ++votes[static_cast<std::size_t>(t.label[leaf])];
  }
  int best = 0;
  for (std::size_t k = 1; k < votes.size(); ++k) {
    if (votes[k] > votes[static_cast<std::size_t>(best)]) {
      best = static_cast<int>(k);
    }
  }
  return best;
}

std::vector<int> FlatForestQuant::predict_batch(const Matrix& x) const {
  if (trees_.empty()) {
    throw std::logic_error("FlatForestQuant::predict_batch: not trained");
  }
  const std::size_t stride = static_cast<std::size_t>(max_label_) + 1;
  std::vector<int> votes(x.rows * stride, 0);
  // Same blocked, lane-interleaved scheme as FlatForest::predict_batch,
  // on the shared int16 grid (rows encoded once per block, not per
  // tree).
  AlignedBuf<std::int16_t> ibuf(lane_groups(std::min(x.rows, kRowBlock)) *
                                 detail::kLane * n_features_);
  for (std::size_t r0 = 0; r0 < x.rows; r0 += kRowBlock) {
    const std::size_t nb = std::min(kRowBlock, x.rows - r0);
    encode_quant_interleaved(quant_, x, r0, nb, ibuf.data());
    int* bvotes = votes.data() + r0 * stride;
    for (const Nodes& a : trees_) {
      batch_walk_vote(a.decide.data(), a.label.data(), a.depth, ibuf.data(),
                      nb, n_features_, bvotes, stride);
    }
  }
  std::vector<int> out;
  vote_argmax(votes, x.rows, stride, &out);
  return out;
}

QuantDivergence FlatForestQuant::measure(const FlatForest& exact,
                                         const Matrix& x) const {
  if (exact.tree_count() != trees_.size() || x.cols != n_features_) {
    throw std::invalid_argument("FlatForestQuant::measure: shape mismatch");
  }
  QuantDivergence d;
  d.rows = x.rows;
  const std::vector<int> exact_labels = exact.predict_batch(x);
  const std::vector<int> quant_labels = predict_batch(x);
  std::vector<std::int16_t> qrow(n_features_);
  for (std::size_t r = 0; r < x.rows; ++r) {
    const std::span<const double> row(x.row(r), x.cols);
    quant_.encode_row(row, qrow.data());
    bool flip = false;
    for (std::size_t t = 0; t < trees_.size(); ++t) {
      flip |= flipped_on_exact_path(exact.trees()[t], trees_[t].threshold,
                                    quant_, row, qrow.data(), &d);
    }
    if (flip) ++d.flipped;
    if (exact_labels[r] != quant_labels[r]) ++d.diverged;
  }
  return d;
}

}  // namespace pulpc::ml
