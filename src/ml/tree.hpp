// CART decision-tree classifier (Gini impurity), the model the paper
// uses: "a standard machine learning technique that supports decisions by
// checking a sequence of control statements", chosen over deep models
// because it gives insight into which static features matter (feature
// importances, Table IV).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "ml/dataset.hpp"

namespace pulpc::ml {

struct TreeParams {
  int max_depth = 16;
  int min_samples_split = 2;
  int min_samples_leaf = 1;
  /// Features examined per split; -1 = all (random forests use a subset).
  int max_features = -1;
  std::uint64_t seed = 0;  ///< feature-subsample shuffling
};

class DecisionTree {
 public:
  explicit DecisionTree(TreeParams params = {}) : params_(params) {}

  /// Fit on a feature matrix and integer class labels. Throws
  /// std::invalid_argument on shape mismatch or empty input.
  void fit(const Matrix& x, const std::vector<int>& y);
  /// Fit on a row subset (bootstrap/fold training).
  void fit(const Matrix& x, const std::vector<int>& y,
           const std::vector<std::size_t>& rows);

  /// The single node-chasing traversal implementation; every other
  /// predict entry point (matrix overload, batch path, the flat-engine
  /// differential baseline) funnels through this walk.
  [[nodiscard]] int predict(std::span<const double> row) const;
  /// Thin wrapper over predict_batch (kept for source compatibility).
  [[nodiscard]] std::vector<int> predict(const Matrix& x) const;
  /// Batch prediction: one call per feature matrix. Reference
  /// (node-chasing) implementation — ml::FlatTree is the fast layout,
  /// proven bit-identical to this one by tests/test_flat_predict.cpp.
  [[nodiscard]] std::vector<int> predict_batch(const Matrix& x) const;

  /// Normalised Gini importance per feature column (sums to 1 unless the
  /// tree is a single leaf).
  [[nodiscard]] const std::vector<double>& feature_importances() const {
    return importances_;
  }

  [[nodiscard]] bool trained() const noexcept { return !nodes_.empty(); }
  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] int depth() const noexcept { return depth_; }

  /// Indented textual dump of the decision rules.
  [[nodiscard]] std::string to_string(
      const std::vector<std::string>& feature_names = {}) const;

  /// Persist the fitted tree as a small text format ("pulpc-tree v1").
  /// Throws std::logic_error when not trained.
  void save(std::ostream& out) const;
  /// Rebuild a tree saved with save(). Throws std::runtime_error on
  /// malformed input.
  [[nodiscard]] static DecisionTree load(std::istream& in);

  /// One stored node. Public, read-only via nodes(): the flat inference
  /// engine (ml/flat.hpp) and the persistence layer re-lay this
  /// structure out without re-implementing training.
  struct Node {
    int feature = -1;        ///< -1 for leaves
    double threshold = 0.0;  ///< go left when value <= threshold
    int left = -1;
    int right = -1;
    int label = 0;  ///< majority class (used at leaves)
  };

  /// Read-only view of the trained node array (index 0 is the root).
  [[nodiscard]] const std::vector<Node>& nodes() const noexcept {
    return nodes_;
  }

 private:
  int build(const Matrix& x, const std::vector<int>& y,
            std::vector<std::size_t>& rows, std::size_t begin,
            std::size_t end, int depth);

  TreeParams params_;
  std::vector<Node> nodes_;
  std::vector<double> importances_;
  int depth_ = 0;
  std::size_t fit_rows_ = 0;
};

}  // namespace pulpc::ml
