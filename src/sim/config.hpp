// Cluster configuration: topology and timing of the simulated PULP
// instance. Defaults model the paper's `8c4flp` configuration: 8 RI5CY
// cores, 16-bank 64 KiB TCDM, 32-bank 512 KiB L2 with 15-cycle latency,
// 4 shared single-stage FPUs.
#pragma once

#include <cstdint>

namespace pulpc::sim {

struct ClusterConfig {
  // ---- topology ----
  unsigned num_cores = 8;
  unsigned l1_banks = 16;
  unsigned l2_banks = 32;
  unsigned num_fpus = 4;

  // ---- memory map ----
  std::uint32_t tcdm_base = 0x1000'0000;
  std::uint32_t tcdm_bytes = 64 * 1024;
  std::uint32_t l2_base = 0x1C00'0000;
  std::uint32_t l2_bytes = 512 * 1024;

  // ---- timing (cycles) ----
  /// Serial integer divider occupancy (RI5CY's divider is multi-cycle).
  unsigned div_cycles = 12;
  /// FP divide / sqrt occupancy of the shared FPU.
  unsigned fpdiv_cycles = 10;
  /// Total latency of an off-cluster L2 access (the paper: 15 cycles).
  unsigned l2_latency = 15;
  /// Extra bubble cycles after a taken branch.
  unsigned taken_branch_penalty = 1;
  /// Cycles between barrier release by the event unit and resume
  /// (event-unit round trip).
  unsigned barrier_wakeup = 8;
  /// Instructions per I-cache line (refills happen on first touch).
  unsigned icache_line = 16;
  /// Stall cycles paid on an I-cache line refill.
  unsigned icache_refill_stall = 5;
  /// Private per-core I-cache slices (as in RI5CY clusters): each core
  /// refills its own lines; false models one shared cache.
  bool icache_private = true;

  /// Safety net against runaway/deadlocked programs.
  std::uint64_t max_cycles = 400'000'000;

  /// FPU servicing a given core (fixed core-to-FPU interconnect mapping).
  [[nodiscard]] unsigned fpu_for(unsigned core) const noexcept {
    return core % num_fpus;
  }
  [[nodiscard]] bool in_tcdm(std::uint32_t addr) const noexcept {
    return addr >= tcdm_base && addr < tcdm_base + tcdm_bytes;
  }
  [[nodiscard]] bool in_l2(std::uint32_t addr) const noexcept {
    return addr >= l2_base && addr < l2_base + l2_bytes;
  }
};

/// Execution options of a simulation run. Unlike ClusterConfig these do
/// not describe the modelled hardware: toggling any of them changes how
/// fast the simulator reaches its answer, never the answer itself —
/// sim::RunStats are bit-identical for every combination (enforced by
/// tests/test_sim_fastpath.cpp over the whole kernel registry).
struct SimOptions {
  /// Event-driven idle fast-forwarding: when every running core is
  /// blocked (barrier wait, DMA wait, L2 access in flight, multi-cycle
  /// divider/FPU occupancy) the simulator computes the next wake event
  /// across core, DMA and FPU timestamps and jumps the clock there in
  /// one step, bulk-charging the skipped cycles to each core's current
  /// operating state so the Table I energy integration is unchanged.
  /// Keep the escape hatch `false` to A/B the cycle-stepped path.
  /// Automatically disabled for runs with a TraceSink attached, whose
  /// per-cycle event stream must stay complete.
  bool fast_forward = true;
};

}  // namespace pulpc::sim
