// GVSOC-style trace emission interface. The simulator emits one event per
// line-worthy occurrence (instruction issue, core state change, bank
// access, ...) identified by the cycle number and the hierarchical path
// of the originating component, mirroring the trace format the paper's
// listener hierarchy parses.
#pragma once

#include <cstdint>
#include <string>

namespace pulpc::sim {

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  /// Record one event. `path` is the component path (e.g.
  /// "/chip/cluster/pe0/insn"); `message` the event payload.
  virtual void event(std::uint64_t cycle, const std::string& path,
                     const std::string& message) = 0;
};

}  // namespace pulpc::sim
