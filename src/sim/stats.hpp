// Per-component activity counters produced by a simulation run. These are
// the quantities the paper obtains by parsing GVSOC traces: every counter
// maps either to a Table I energy model row or to a Table III dynamic
// feature. Counters accumulate only inside the kernel region (between the
// kernel.enter / kernel.exit markers).
//
// Engine-path independence: everything in this header — and therefore
// every save_stats text, dataset CSV and artifact fingerprint derived
// from it — is byte-identical whichever execution path produced it
// (event-driven fast-forward on or off, traced or untraced, any thread
// count). tests/test_sim_fastpath.cpp enforces this; diagnostics that do
// depend on the path (fast-forward coverage) live on sim::RunResult, not
// here.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

namespace pulpc::sim {

/// Activity of one processing element. Cycle counters partition the
/// core's in-region cycles by operating state (the Table I PE rows);
/// opcode counters feed the PE_* dynamic features.
struct CoreStats {
  // opcode counts
  std::uint64_t n_alu = 0;
  std::uint64_t n_div = 0;
  std::uint64_t n_fp = 0;
  std::uint64_t n_fpdiv = 0;
  std::uint64_t n_l1 = 0;
  std::uint64_t n_l2 = 0;
  std::uint64_t n_branch = 0;
  std::uint64_t n_nop = 0;
  std::uint64_t n_sync = 0;
  std::uint64_t instrs = 0;  ///< issued instructions (I-cache uses)

  // cycles by operating state
  std::uint64_t cyc_alu = 0;
  std::uint64_t cyc_fp = 0;
  std::uint64_t cyc_l1 = 0;
  std::uint64_t cyc_l2 = 0;
  std::uint64_t cyc_wait = 0;  ///< active wait (priced as NOP)
  std::uint64_t cyc_cg = 0;    ///< clock-gated

  /// Cycles lost to resource contention or multi-cycle instructions
  /// (the PE_idle dynamic feature's numerator). Subset of the cyc_*
  /// counters above.
  std::uint64_t idle_cycles = 0;

  [[nodiscard]] std::uint64_t active_cycles() const noexcept {
    return cyc_alu + cyc_fp + cyc_l1 + cyc_l2 + cyc_wait + cyc_cg;
  }
};

/// Activity of one memory bank (TCDM or L2).
struct BankStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  /// Denied same-cycle requests (the L1_conflicts dynamic feature).
  std::uint64_t conflicts = 0;

  [[nodiscard]] std::uint64_t accesses() const noexcept {
    return reads + writes;
  }
};

struct FpuStats {
  std::uint64_t busy_cycles = 0;
};

struct IcacheStats {
  std::uint64_t uses = 0;  ///< instruction fetches served
  std::uint64_t refills = 0;
};

struct DmaStats {
  std::uint64_t busy_cycles = 0;
  std::uint64_t beats = 0;  ///< words transferred
};

/// Complete activity record of one kernel execution at a given core count.
struct RunStats {
  unsigned ncores = 0;        ///< cores the kernel ran on
  unsigned total_cores = 0;   ///< cores physically in the cluster
  std::uint64_t total_cycles = 0;   ///< whole-program wall cycles
  std::uint64_t region_begin = 0;   ///< first kernel.enter cycle
  std::uint64_t region_end = 0;     ///< last kernel.exit cycle

  std::vector<CoreStats> core;   ///< size total_cores (idle cores all-zero)
  std::vector<BankStats> l1;
  std::vector<BankStats> l2;
  std::vector<FpuStats> fpu;
  IcacheStats icache;
  DmaStats dma;

  /// Kernel-region wall cycles (per-cycle energy contributions integrate
  /// over this window, as in the paper's trace filtering).
  [[nodiscard]] std::uint64_t region_cycles() const noexcept {
    return region_end >= region_begin ? region_end - region_begin + 1 : 0;
  }

  [[nodiscard]] std::uint64_t total_instrs() const noexcept {
    std::uint64_t n = 0;
    for (const CoreStats& c : core) n += c.instrs;
    return n;
  }
  [[nodiscard]] std::uint64_t l1_accesses() const noexcept {
    std::uint64_t n = 0;
    for (const BankStats& b : l1) n += b.accesses();
    return n;
  }
  [[nodiscard]] std::uint64_t l1_conflicts() const noexcept {
    std::uint64_t n = 0;
    for (const BankStats& b : l1) n += b.conflicts;
    return n;
  }
};

/// Exact field-by-field comparison (all counters are integers, so
/// serialization round-trips are checked with plain equality).
[[nodiscard]] bool operator==(const CoreStats& a, const CoreStats& b) noexcept;
[[nodiscard]] bool operator==(const BankStats& a, const BankStats& b) noexcept;
[[nodiscard]] bool operator==(const FpuStats& a, const FpuStats& b) noexcept;
[[nodiscard]] bool operator==(const IcacheStats& a,
                              const IcacheStats& b) noexcept;
[[nodiscard]] bool operator==(const DmaStats& a, const DmaStats& b) noexcept;
[[nodiscard]] bool operator==(const RunStats& a, const RunStats& b) noexcept;

/// Serialize every counter of a run to a line-oriented text block
/// ("runstats v1" ... "end"). All counters are unsigned integers, so the
/// round trip through save_stats/load_stats is exact. This is the raw
/// payload of the core::ArtifactStore persistence layer.
void save_stats(std::ostream& out, const RunStats& stats);

/// Parse one block written by save_stats, consuming up to and including
/// its "end" line. Throws std::runtime_error on malformed or truncated
/// input (wrong magic, missing section, short counter row).
[[nodiscard]] RunStats load_stats(std::istream& in);

}  // namespace pulpc::sim
