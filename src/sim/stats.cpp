#include "sim/stats.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace pulpc::sim {

bool operator==(const CoreStats& a, const CoreStats& b) noexcept {
  return a.n_alu == b.n_alu && a.n_div == b.n_div && a.n_fp == b.n_fp &&
         a.n_fpdiv == b.n_fpdiv && a.n_l1 == b.n_l1 && a.n_l2 == b.n_l2 &&
         a.n_branch == b.n_branch && a.n_nop == b.n_nop &&
         a.n_sync == b.n_sync && a.instrs == b.instrs &&
         a.cyc_alu == b.cyc_alu && a.cyc_fp == b.cyc_fp &&
         a.cyc_l1 == b.cyc_l1 && a.cyc_l2 == b.cyc_l2 &&
         a.cyc_wait == b.cyc_wait && a.cyc_cg == b.cyc_cg &&
         a.idle_cycles == b.idle_cycles;
}

bool operator==(const BankStats& a, const BankStats& b) noexcept {
  return a.reads == b.reads && a.writes == b.writes &&
         a.conflicts == b.conflicts;
}

bool operator==(const FpuStats& a, const FpuStats& b) noexcept {
  return a.busy_cycles == b.busy_cycles;
}

bool operator==(const IcacheStats& a, const IcacheStats& b) noexcept {
  return a.uses == b.uses && a.refills == b.refills;
}

bool operator==(const DmaStats& a, const DmaStats& b) noexcept {
  return a.busy_cycles == b.busy_cycles && a.beats == b.beats;
}

bool operator==(const RunStats& a, const RunStats& b) noexcept {
  return a.ncores == b.ncores && a.total_cores == b.total_cores &&
         a.total_cycles == b.total_cycles &&
         a.region_begin == b.region_begin && a.region_end == b.region_end &&
         a.core == b.core && a.l1 == b.l1 && a.l2 == b.l2 &&
         a.fpu == b.fpu && a.icache == b.icache && a.dma == b.dma;
}

namespace {

constexpr const char* kMagic = "runstats v1";

[[noreturn]] void malformed(const std::string& what) {
  throw std::runtime_error("sim::load_stats: " + what);
}

/// Read one line and parse exactly the caller's fields from it; a short
/// or non-numeric row is a truncation/corruption error.
std::istringstream line_fields(std::istream& in, const char* section) {
  std::string line;
  if (!std::getline(in, line)) {
    malformed(std::string("truncated before ") + section);
  }
  return std::istringstream(line);
}

template <typename... Ts>
void parse(std::istream& in, const char* section, Ts&... fields) {
  std::istringstream row = line_fields(in, section);
  if (!((row >> fields) && ...)) {
    malformed(std::string("short or non-numeric row in ") + section);
  }
}

template <typename T, typename Fn>
std::vector<T> parse_section(std::istream& in, const char* name, Fn&& one) {
  std::string tag;
  std::size_t n = 0;
  std::istringstream row = line_fields(in, name);
  if (!(row >> tag >> n) || tag != name) {
    malformed(std::string("expected section ") + name);
  }
  // An absurd element count means a corrupt length field; refuse before
  // looping (a cluster has single-digit cores and tens of banks).
  if (n > 4096) malformed(std::string("implausible count in ") + name);
  std::vector<T> out(n);
  for (T& item : out) one(item);
  return out;
}

}  // namespace

void save_stats(std::ostream& out, const RunStats& s) {
  out << kMagic << '\n';
  out << "run " << s.ncores << ' ' << s.total_cores << ' ' << s.total_cycles
      << ' ' << s.region_begin << ' ' << s.region_end << '\n';
  out << "core " << s.core.size() << '\n';
  for (const CoreStats& c : s.core) {
    out << c.n_alu << ' ' << c.n_div << ' ' << c.n_fp << ' ' << c.n_fpdiv
        << ' ' << c.n_l1 << ' ' << c.n_l2 << ' ' << c.n_branch << ' '
        << c.n_nop << ' ' << c.n_sync << ' ' << c.instrs << ' ' << c.cyc_alu
        << ' ' << c.cyc_fp << ' ' << c.cyc_l1 << ' ' << c.cyc_l2 << ' '
        << c.cyc_wait << ' ' << c.cyc_cg << ' ' << c.idle_cycles << '\n';
  }
  out << "l1 " << s.l1.size() << '\n';
  for (const BankStats& b : s.l1) {
    out << b.reads << ' ' << b.writes << ' ' << b.conflicts << '\n';
  }
  out << "l2 " << s.l2.size() << '\n';
  for (const BankStats& b : s.l2) {
    out << b.reads << ' ' << b.writes << ' ' << b.conflicts << '\n';
  }
  out << "fpu " << s.fpu.size() << '\n';
  for (const FpuStats& f : s.fpu) out << f.busy_cycles << '\n';
  out << "icache " << s.icache.uses << ' ' << s.icache.refills << '\n';
  out << "dma " << s.dma.busy_cycles << ' ' << s.dma.beats << '\n';
  out << "end\n";
}

RunStats load_stats(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line != kMagic) {
    malformed("bad magic line");
  }
  RunStats s;
  std::string tag;
  {
    std::istringstream row = line_fields(in, "run");
    if (!(row >> tag >> s.ncores >> s.total_cores >> s.total_cycles >>
          s.region_begin >> s.region_end) ||
        tag != "run") {
      malformed("bad run header");
    }
  }
  s.core = parse_section<CoreStats>(in, "core", [&](CoreStats& c) {
    parse(in, "core", c.n_alu, c.n_div, c.n_fp, c.n_fpdiv, c.n_l1, c.n_l2,
          c.n_branch, c.n_nop, c.n_sync, c.instrs, c.cyc_alu, c.cyc_fp,
          c.cyc_l1, c.cyc_l2, c.cyc_wait, c.cyc_cg, c.idle_cycles);
  });
  s.l1 = parse_section<BankStats>(in, "l1", [&](BankStats& b) {
    parse(in, "l1", b.reads, b.writes, b.conflicts);
  });
  s.l2 = parse_section<BankStats>(in, "l2", [&](BankStats& b) {
    parse(in, "l2", b.reads, b.writes, b.conflicts);
  });
  s.fpu = parse_section<FpuStats>(in, "fpu", [&](FpuStats& f) {
    parse(in, "fpu", f.busy_cycles);
  });
  parse(in, "icache", tag, s.icache.uses, s.icache.refills);
  if (tag != "icache") malformed("expected icache section");
  parse(in, "dma", tag, s.dma.busy_cycles, s.dma.beats);
  if (tag != "dma") malformed("expected dma section");
  if (!std::getline(in, line) || line != "end") {
    malformed("missing end marker");
  }
  return s;
}

}  // namespace pulpc::sim
