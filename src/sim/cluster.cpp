#include "sim/cluster.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>
#include <utility>

namespace pulpc::sim {

namespace {

using kir::Instr;
using kir::Op;

// 32-bit two's-complement arithmetic without UB.
std::int32_t add32(std::int32_t a, std::int32_t b) {
  return static_cast<std::int32_t>(static_cast<std::uint32_t>(a) +
                                   static_cast<std::uint32_t>(b));
}
std::int32_t sub32(std::int32_t a, std::int32_t b) {
  return static_cast<std::int32_t>(static_cast<std::uint32_t>(a) -
                                   static_cast<std::uint32_t>(b));
}
std::int32_t mul32(std::int32_t a, std::int32_t b) {
  return static_cast<std::int32_t>(static_cast<std::int64_t>(a) *
                                   static_cast<std::int64_t>(b));
}
// RISC-V division semantics: x/0 == -1, INT_MIN/-1 == INT_MIN.
std::int32_t div32(std::int32_t a, std::int32_t b) {
  if (b == 0) return -1;
  if (a == std::numeric_limits<std::int32_t>::min() && b == -1) return a;
  return a / b;
}
std::int32_t rem32(std::int32_t a, std::int32_t b) {
  if (b == 0) return a;
  if (a == std::numeric_limits<std::int32_t>::min() && b == -1) return 0;
  return a % b;
}

std::uint32_t fnv1a(const std::string& s) {
  std::uint32_t h = 2166136261U;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 16777619U;
  }
  return h;
}

std::uint32_t xorshift(std::uint32_t& x) {
  x ^= x << 13;
  x ^= x >> 17;
  x ^= x << 5;
  return x;
}

std::string hex_addr(std::uint32_t addr) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "0x%08x", addr);
  return buf;
}

}  // namespace

Cluster::Cluster(ClusterConfig cfg)
    : cfg_(cfg),
      tcdm_(cfg.tcdm_bytes / 4, 0U),
      l2mem_(cfg.l2_bytes / 4, 0U),
      cores_(cfg.num_cores),
      l1_banks_(cfg.l1_banks),
      l2_banks_(cfg.l2_banks),
      fpus_(cfg.num_fpus) {
  for (unsigned i = 0; i < cfg_.num_cores; ++i) cores_[i].id = i;
}

void Cluster::load(const kir::Program& prog) {
  const std::string err = kir::verify(prog);
  if (!err.empty()) {
    throw std::invalid_argument("Cluster::load(" + prog.name + "): " + err);
  }
  for (const kir::BufferInfo& b : prog.buffers) {
    const bool fits =
        b.space == kir::MemSpace::Tcdm
            ? (cfg_.in_tcdm(b.base) && cfg_.in_tcdm(b.base + b.bytes() - 1))
            : (cfg_.in_l2(b.base) && cfg_.in_l2(b.base + b.bytes() - 1));
    if (!fits) {
      throw std::invalid_argument("Cluster::load(" + prog.name +
                                  "): buffer " + b.name +
                                  " outside its memory space");
    }
  }
  prog_ = prog;
  const std::size_t lines = prog_.code.size() / cfg_.icache_line + 1;
  icache_lines_.assign(cfg_.icache_private ? lines * cfg_.num_cores : lines,
                       false);
}

std::uint32_t& Cluster::word_at(std::uint32_t addr) {
  return const_cast<std::uint32_t&>(std::as_const(*this).word_at(addr));
}

const std::uint32_t& Cluster::word_at(std::uint32_t addr) const {
  if ((addr & 3U) != 0U) {
    throw SimError{"misaligned access at " + hex_addr(addr)};
  }
  if (cfg_.in_tcdm(addr)) return tcdm_[(addr - cfg_.tcdm_base) / 4];
  if (cfg_.in_l2(addr)) return l2mem_[(addr - cfg_.l2_base) / 4];
  throw SimError{"unmapped access at " + hex_addr(addr)};
}

std::int32_t Cluster::read_i32(std::uint32_t addr) const {
  try {
    return static_cast<std::int32_t>(word_at(addr));
  } catch (const SimError& e) {
    throw std::out_of_range(e.message);
  }
}

float Cluster::read_f32(std::uint32_t addr) const {
  try {
    return std::bit_cast<float>(word_at(addr));
  } catch (const SimError& e) {
    throw std::out_of_range(e.message);
  }
}

void Cluster::write_i32(std::uint32_t addr, std::int32_t value) {
  try {
    word_at(addr) = static_cast<std::uint32_t>(value);
  } catch (const SimError& e) {
    throw std::out_of_range(e.message);
  }
}

void Cluster::write_f32(std::uint32_t addr, float value) {
  try {
    word_at(addr) = std::bit_cast<std::uint32_t>(value);
  } catch (const SimError& e) {
    throw std::out_of_range(e.message);
  }
}

void Cluster::init_buffers() {
  for (const kir::BufferInfo& b : prog_.buffers) {
    std::uint32_t seed = fnv1a(b.name) ^ (b.elems * 2654435761U);
    if (seed == 0) seed = 1;
    for (std::uint32_t i = 0; i < b.elems; ++i) {
      const std::uint32_t addr = b.base + i * 4;
      std::uint32_t word = 0;
      const std::uint32_t r = xorshift(seed);
      switch (b.init) {
        case kir::BufInit::Zero:
          break;
        case kir::BufInit::Ramp:
          word = b.elem == kir::DType::F32
                     ? std::bit_cast<std::uint32_t>(static_cast<float>(i))
                     : i;
          break;
        case kir::BufInit::Random:
          if (b.elem == kir::DType::F32) {
            const float f = static_cast<float>(r >> 8) / 16777216.0F;
            word = std::bit_cast<std::uint32_t>(f * 2.0F - 1.0F);
          } else {
            word = static_cast<std::uint32_t>(
                static_cast<std::int32_t>(r % 256U) - 128);
          }
          break;
        case kir::BufInit::RandomPos:
          if (b.elem == kir::DType::F32) {
            const float f =
                (static_cast<float>(r >> 8) + 1.0F) / 16777216.0F;
            word = std::bit_cast<std::uint32_t>(f);
          } else {
            word = r % 127U + 1U;
          }
          break;
      }
      word_at(addr) = word;
    }
  }
}

void Cluster::reset(unsigned ncores) {
  ncores_ = ncores;
  cycle_ = 0;
  running_ = ncores;
  barrier_arrived_ = 0;
  lock_owner_ = -1;
  region_open_ = false;
  region_begin_ = 0;
  region_end_ = 0;
  for (Core& c : cores_) {
    c.pc = prog_.entry;
    c.iregs.fill(0);
    c.fregs.fill(0.0F);
    c.state = c.id < ncores ? Core::State::Ready : Core::State::Halted;
    c.stall_remaining = 0;
    c.waiting_barrier = false;
    c.waiting_dma = false;
    c.wake_at = 0;
    c.in_region = false;
    c.last_trace_state = -1;
    c.stats = CoreStats{};
  }
  for (Bank& b : l1_banks_) b = Bank{};
  for (Bank& b : l2_banks_) b = Bank{};
  for (Fpu& f : fpus_) f = Fpu{};
  icache_lines_.assign(icache_lines_.size(), false);
  icache_ = IcacheStats{};
  dma_ = Dma{};
  std::fill(tcdm_.begin(), tcdm_.end(), 0U);
  std::fill(l2mem_.begin(), l2mem_.end(), 0U);
  init_buffers();
}

RunResult Cluster::run(unsigned ncores, TraceSink* sink) {
  if (prog_.code.empty()) {
    throw std::logic_error("Cluster::run: no program loaded");
  }
  if (ncores == 0 || ncores > cfg_.num_cores) {
    throw std::invalid_argument("Cluster::run: bad core count");
  }
  sink_ = sink;
  reset(ncores);

  RunResult res;
  try {
    while (running_ > 0) {
      if (cycle_ >= cfg_.max_cycles) {
        throw SimError{"cycle limit exceeded (deadlock or runaway kernel)"};
      }
      ++cycle_;
      step_dma();
      const auto start = static_cast<unsigned>(cycle_ % ncores_);
      for (unsigned k = 0; k < ncores_; ++k) {
        step_core(cores_[(start + k) % ncores_]);
      }
    }
    res.ok = true;
  } catch (const SimError& e) {
    res.error = e.message;
  }
  sink_ = nullptr;

  RunStats& st = res.stats;
  st.ncores = ncores_;
  st.total_cores = cfg_.num_cores;
  st.total_cycles = cycle_;
  st.region_begin = region_open_ || region_end_ > 0 ? region_begin_ : 1;
  st.region_end = region_end_ > 0 ? region_end_ : cycle_;
  st.core.resize(cfg_.num_cores);
  for (unsigned i = 0; i < cfg_.num_cores; ++i) st.core[i] = cores_[i].stats;
  st.l1.resize(cfg_.l1_banks);
  for (unsigned i = 0; i < cfg_.l1_banks; ++i) st.l1[i] = l1_banks_[i].stats;
  st.l2.resize(cfg_.l2_banks);
  for (unsigned i = 0; i < cfg_.l2_banks; ++i) st.l2[i] = l2_banks_[i].stats;
  st.fpu.resize(cfg_.num_fpus);
  for (unsigned i = 0; i < cfg_.num_fpus; ++i) st.fpu[i] = fpus_[i].stats;
  st.icache = icache_;
  st.dma = dma_.stats;
  return res;
}

void Cluster::trace(const std::string& path, const std::string& msg) {
  if (sink_ != nullptr) sink_->event(cycle_, path, msg);
}

std::string Cluster::pe_path(unsigned core, const char* leaf) const {
  return "/chip/cluster/pe" + std::to_string(core) + "/" + leaf;
}

void Cluster::trace_state(Core& c, CycleClass cls, bool idle) {
  static constexpr const char* kNames[] = {"alu", "fp", "l1",
                                           "l2",  "wait", "cg"};
  const int code = static_cast<int>(cls) * 2 + (idle ? 1 : 0);
  if (code == c.last_trace_state) return;
  c.last_trace_state = code;
  std::string msg = "state=";
  msg += kNames[static_cast<int>(cls)];
  if (idle) msg += "_stall";
  sink_->event(cycle_, pe_path(c.id, "trace"), msg);
}

void Cluster::charge(Core& c, CycleClass cls, bool idle) {
  if (sink_ != nullptr) trace_state(c, cls, idle);
  if (!c.in_region) return;
  switch (cls) {
    case CycleClass::Alu: ++c.stats.cyc_alu; break;
    case CycleClass::Fp: ++c.stats.cyc_fp; break;
    case CycleClass::L1: ++c.stats.cyc_l1; break;
    case CycleClass::L2: ++c.stats.cyc_l2; break;
    case CycleClass::Wait: ++c.stats.cyc_wait; break;
    case CycleClass::Cg: ++c.stats.cyc_cg; break;
  }
  if (idle) ++c.stats.idle_cycles;
}

void Cluster::begin_stall(Core& c, CycleClass issue_cls, unsigned extra,
                          CycleClass stall_cls, bool idle) {
  charge(c, issue_cls, false);
  if (extra > 0) {
    c.state = Core::State::Stalled;
    c.stall_remaining = extra;
    c.stall_class = stall_cls;
    c.stall_is_idle = idle;
  }
}

void Cluster::release_barrier() {
  barrier_arrived_ = 0;
  for (unsigned i = 0; i < ncores_; ++i) {
    Core& c = cores_[i];
    if (c.waiting_barrier) {
      c.waiting_barrier = false;
      c.wake_at = cycle_ + cfg_.barrier_wakeup;
    }
  }
}

void Cluster::step_core(Core& c) {
  switch (c.state) {
    case Core::State::Halted:
      return;
    case Core::State::Sleeping: {
      if (c.waiting_dma && dma_.remaining == 0) {
        c.waiting_dma = false;
        c.wake_at = cycle_;
      }
      if (!c.waiting_barrier && !c.waiting_dma && cycle_ >= c.wake_at) {
        c.state = Core::State::Ready;
        execute(c);
        return;
      }
      charge(c, CycleClass::Cg, false);
      return;
    }
    case Core::State::Stalled:
      charge(c, c.stall_class, c.stall_is_idle);
      if (--c.stall_remaining == 0) c.state = Core::State::Ready;
      return;
    case Core::State::Ready:
      execute(c);
      return;
  }
}

bool Cluster::bank_grant(std::uint32_t addr, Core& c, bool is_l2) {
  std::vector<Bank>& banks = is_l2 ? l2_banks_ : l1_banks_;
  const std::size_t idx = (addr / 4) % banks.size();
  Bank& bank = banks[idx];
  if (bank.claim_cycle == cycle_) {
    ++bank.stats.conflicts;
    if (sink_ != nullptr) {
      trace("/chip/cluster/" + std::string(is_l2 ? "l2" : "l1") + "/bank" +
                std::to_string(idx) + "/trace",
            "conflict");
    }
    charge(c, CycleClass::Wait, true);
    return false;
  }
  bank.claim_cycle = cycle_;
  return true;
}

void Cluster::step_dma() {
  if (dma_.remaining == 0) return;
  word_at(dma_.dst) = word_at(dma_.src);
  const auto count = [&](std::uint32_t addr, bool write) {
    const bool is_l1 = cfg_.in_tcdm(addr);
    std::vector<Bank>& banks = is_l1 ? l1_banks_ : l2_banks_;
    const std::size_t idx = (addr / 4) % banks.size();
    Bank& bank = banks[idx];
    if (write) {
      ++bank.stats.writes;
    } else {
      ++bank.stats.reads;
    }
    if (sink_ != nullptr) {
      trace("/chip/cluster/" + std::string(is_l1 ? "l1" : "l2") + "/bank" +
                std::to_string(idx) + "/trace",
            std::string(write ? "write" : "read") + " addr=" +
                hex_addr(addr));
    }
  };
  count(dma_.src, /*write=*/false);
  count(dma_.dst, /*write=*/true);
  ++dma_.stats.busy_cycles;
  ++dma_.stats.beats;
  dma_.src += 4;
  dma_.dst += 4;
  if (--dma_.remaining == 0) trace("/chip/cluster/dma/trace", "done");
}

void Cluster::execute(Core& c) {
  // Instruction fetch through the I-cache (private per-core slices by
  // default, as in RI5CY clusters).
  const std::uint32_t nlines =
      static_cast<std::uint32_t>(prog_.code.size() / cfg_.icache_line + 1);
  const std::uint32_t line = c.pc / cfg_.icache_line +
                             (cfg_.icache_private ? c.id * nlines : 0U);
  if (!icache_lines_[line]) {
    icache_lines_[line] = true;
    ++icache_.refills;
    trace("/chip/cluster/icache/trace", "refill line=" + std::to_string(line));
    if (cfg_.icache_refill_stall > 0) {
      // All refill cycles (including this one) are contention-idle.
      charge(c, CycleClass::Wait, true);
      if (cfg_.icache_refill_stall > 1) {
        c.state = Core::State::Stalled;
        c.stall_remaining = cfg_.icache_refill_stall - 1;
        c.stall_class = CycleClass::Wait;
        c.stall_is_idle = true;
      }
      return;  // refetch once the line has arrived
    }
  }

  const Instr ins = prog_.code[c.pc];
  auto& ir = c.iregs;
  auto& fr = c.fregs;

  // ---- resource acquisition; denied -> active-wait retry next cycle ----
  const kir::OpClass cls = kir::op_class(ins.op);
  if (cls == kir::OpClass::Fp || cls == kir::OpClass::FpDiv) {
    Fpu& fpu = fpus_[cfg_.fpu_for(c.id)];
    if (fpu.claim_cycle == cycle_ || fpu.busy_until >= cycle_) {
      charge(c, CycleClass::Wait, true);
      return;
    }
    fpu.claim_cycle = cycle_;
    if (cls == kir::OpClass::FpDiv) {
      fpu.busy_until = cycle_ + cfg_.fpdiv_cycles - 1;
      fpu.stats.busy_cycles += cfg_.fpdiv_cycles;
      if (sink_ != nullptr) {
        trace("/chip/cluster/fpu" + std::to_string(cfg_.fpu_for(c.id)) +
                  "/trace",
              "busy n=" + std::to_string(cfg_.fpdiv_cycles));
      }
    } else {
      fpu.stats.busy_cycles += 1;
      if (sink_ != nullptr) {
        trace("/chip/cluster/fpu" + std::to_string(cfg_.fpu_for(c.id)) +
                  "/trace",
              "busy n=1");
      }
    }
  }

  std::uint32_t mem_addr = 0;
  bool mem_is_l2 = false;
  if (kir::is_memory(ins.op)) {
    mem_addr = static_cast<std::uint32_t>(ir[ins.rs1]) +
               static_cast<std::uint32_t>(ins.imm);
    if ((mem_addr & 3U) != 0U) {
      throw SimError{prog_.name + ": misaligned access at " +
                     hex_addr(mem_addr) + " (pc=" + std::to_string(c.pc) +
                     ")"};
    }
    if (cfg_.in_tcdm(mem_addr)) {
      mem_is_l2 = false;
    } else if (cfg_.in_l2(mem_addr)) {
      mem_is_l2 = true;
    } else {
      throw SimError{prog_.name + ": unmapped access at " +
                     hex_addr(mem_addr) + " (pc=" + std::to_string(c.pc) +
                     ")"};
    }
    if (!bank_grant(mem_addr, c, mem_is_l2)) return;  // conflict
  }

  if (ins.op == Op::CritEnter && lock_owner_ >= 0 &&
      lock_owner_ != static_cast<int>(c.id)) {
    charge(c, CycleClass::Wait, true);  // spin on the contended lock
    return;
  }
  if (ins.op == Op::DmaStart && dma_.remaining > 0) {
    charge(c, CycleClass::Wait, true);  // DMA engine busy
    return;
  }

  // ---- issue ----
  if (c.in_region) {
    ++c.stats.instrs;
    ++icache_.uses;
  }
  if (sink_ != nullptr) trace(pe_path(c.id, "insn"), kir::to_string(ins));

  std::uint32_t next_pc = c.pc + 1;
  CycleClass charge_cls = CycleClass::Alu;
  unsigned stall_extra = 0;
  CycleClass stall_cls = CycleClass::Wait;
  bool stall_idle = true;

  switch (ins.op) {
    // ---- integer ALU ----
    case Op::Add: ir[ins.rd] = add32(ir[ins.rs1], ir[ins.rs2]); break;
    case Op::Sub: ir[ins.rd] = sub32(ir[ins.rs1], ir[ins.rs2]); break;
    case Op::Mul: ir[ins.rd] = mul32(ir[ins.rs1], ir[ins.rs2]); break;
    case Op::Mac:
      ir[ins.rd] = add32(ir[ins.rd], mul32(ir[ins.rs1], ir[ins.rs2]));
      break;
    case Op::Slt: ir[ins.rd] = ir[ins.rs1] < ir[ins.rs2] ? 1 : 0; break;
    case Op::And: ir[ins.rd] = ir[ins.rs1] & ir[ins.rs2]; break;
    case Op::Or: ir[ins.rd] = ir[ins.rs1] | ir[ins.rs2]; break;
    case Op::Xor: ir[ins.rd] = ir[ins.rs1] ^ ir[ins.rs2]; break;
    case Op::Shl:
      ir[ins.rd] = static_cast<std::int32_t>(
          static_cast<std::uint32_t>(ir[ins.rs1]) << (ir[ins.rs2] & 31));
      break;
    case Op::Shr: ir[ins.rd] = ir[ins.rs1] >> (ir[ins.rs2] & 31); break;
    case Op::Min: ir[ins.rd] = std::min(ir[ins.rs1], ir[ins.rs2]); break;
    case Op::Max: ir[ins.rd] = std::max(ir[ins.rs1], ir[ins.rs2]); break;
    case Op::Abs:
      ir[ins.rd] = ir[ins.rs1] < 0 ? sub32(0, ir[ins.rs1]) : ir[ins.rs1];
      break;
    case Op::AddI: ir[ins.rd] = add32(ir[ins.rs1], ins.imm); break;
    case Op::MulI: ir[ins.rd] = mul32(ir[ins.rs1], ins.imm); break;
    case Op::AndI: ir[ins.rd] = ir[ins.rs1] & ins.imm; break;
    case Op::OrI: ir[ins.rd] = ir[ins.rs1] | ins.imm; break;
    case Op::XorI: ir[ins.rd] = ir[ins.rs1] ^ ins.imm; break;
    case Op::ShlI:
      ir[ins.rd] = static_cast<std::int32_t>(
          static_cast<std::uint32_t>(ir[ins.rs1]) << (ins.imm & 31));
      break;
    case Op::ShrI: ir[ins.rd] = ir[ins.rs1] >> (ins.imm & 31); break;
    case Op::SltI: ir[ins.rd] = ir[ins.rs1] < ins.imm ? 1 : 0; break;
    case Op::Li: ir[ins.rd] = ins.imm; break;
    case Op::Mv: ir[ins.rd] = ir[ins.rs1]; break;

    // ---- integer divider (serial, multi-cycle) ----
    case Op::Div:
      ir[ins.rd] = div32(ir[ins.rs1], ir[ins.rs2]);
      charge_cls = CycleClass::Alu;
      stall_extra = cfg_.div_cycles - 1;
      stall_cls = CycleClass::Alu;
      break;
    case Op::Rem:
      ir[ins.rd] = rem32(ir[ins.rs1], ir[ins.rs2]);
      charge_cls = CycleClass::Alu;
      stall_extra = cfg_.div_cycles - 1;
      stall_cls = CycleClass::Alu;
      break;

    // ---- floating point (shared FPU) ----
    case Op::FAdd: fr[ins.rd] = fr[ins.rs1] + fr[ins.rs2]; charge_cls = CycleClass::Fp; break;
    case Op::FSub: fr[ins.rd] = fr[ins.rs1] - fr[ins.rs2]; charge_cls = CycleClass::Fp; break;
    case Op::FMul: fr[ins.rd] = fr[ins.rs1] * fr[ins.rs2]; charge_cls = CycleClass::Fp; break;
    case Op::FMac:
      fr[ins.rd] += fr[ins.rs1] * fr[ins.rs2];
      charge_cls = CycleClass::Fp;
      break;
    case Op::FMin:
      fr[ins.rd] = std::min(fr[ins.rs1], fr[ins.rs2]);
      charge_cls = CycleClass::Fp;
      break;
    case Op::FMax:
      fr[ins.rd] = std::max(fr[ins.rs1], fr[ins.rs2]);
      charge_cls = CycleClass::Fp;
      break;
    case Op::FAbs:
      fr[ins.rd] = std::abs(fr[ins.rs1]);
      charge_cls = CycleClass::Fp;
      break;
    case Op::FNeg: fr[ins.rd] = -fr[ins.rs1]; charge_cls = CycleClass::Fp; break;
    case Op::FMv: fr[ins.rd] = fr[ins.rs1]; charge_cls = CycleClass::Fp; break;
    case Op::FLi:
      fr[ins.rd] = std::bit_cast<float>(ins.imm);
      charge_cls = CycleClass::Fp;
      break;
    case Op::FLt:
      ir[ins.rd] = fr[ins.rs1] < fr[ins.rs2] ? 1 : 0;
      charge_cls = CycleClass::Fp;
      break;
    case Op::FLe:
      ir[ins.rd] = fr[ins.rs1] <= fr[ins.rs2] ? 1 : 0;
      charge_cls = CycleClass::Fp;
      break;
    case Op::FEq:
      ir[ins.rd] = fr[ins.rs1] == fr[ins.rs2] ? 1 : 0;
      charge_cls = CycleClass::Fp;
      break;
    case Op::CvtSW:
      fr[ins.rd] = static_cast<float>(ir[ins.rs1]);
      charge_cls = CycleClass::Fp;
      break;
    case Op::CvtWS: {
      const float f = fr[ins.rs1];
      constexpr float kMax = 2147483520.0F;  // largest float < 2^31
      const float clamped = std::min(std::max(f, -kMax), kMax);
      ir[ins.rd] = static_cast<std::int32_t>(clamped);
      charge_cls = CycleClass::Fp;
      break;
    }
    case Op::FDiv:
      fr[ins.rd] = fr[ins.rs2] != 0.0F
                       ? fr[ins.rs1] / fr[ins.rs2]
                       : std::numeric_limits<float>::infinity();
      charge_cls = CycleClass::Fp;
      stall_extra = cfg_.fpdiv_cycles - 1;
      stall_cls = CycleClass::Fp;
      break;
    case Op::FSqrt:
      fr[ins.rd] = std::sqrt(std::max(fr[ins.rs1], 0.0F));
      charge_cls = CycleClass::Fp;
      stall_extra = cfg_.fpdiv_cycles - 1;
      stall_cls = CycleClass::Fp;
      break;

    // ---- memory ----
    case Op::Lw:
      ir[ins.rd] = static_cast<std::int32_t>(word_at(mem_addr));
      break;
    case Op::Flw:
      fr[ins.rd] = std::bit_cast<float>(word_at(mem_addr));
      break;
    case Op::Sw:
      word_at(mem_addr) = static_cast<std::uint32_t>(ir[ins.rs2]);
      break;
    case Op::Fsw:
      word_at(mem_addr) = std::bit_cast<std::uint32_t>(fr[ins.rs2]);
      break;

    // ---- control flow ----
    case Op::Beq:
    case Op::Bne:
    case Op::Blt:
    case Op::Bge: {
      const std::int32_t a = ir[ins.rs1];
      const std::int32_t b = ir[ins.rs2];
      const bool taken = ins.op == Op::Beq   ? a == b
                         : ins.op == Op::Bne ? a != b
                         : ins.op == Op::Blt ? a < b
                                             : a >= b;
      if (taken) {
        next_pc = static_cast<std::uint32_t>(ins.imm);
        stall_extra = cfg_.taken_branch_penalty;
        stall_cls = CycleClass::Wait;
      }
      break;
    }
    case Op::Jmp:
      next_pc = static_cast<std::uint32_t>(ins.imm);
      stall_extra = cfg_.taken_branch_penalty;
      stall_cls = CycleClass::Wait;
      break;

    // ---- active wait ----
    case Op::Nop:
      charge_cls = CycleClass::Wait;
      break;

    // ---- runtime ----
    case Op::CoreId: ir[ins.rd] = static_cast<std::int32_t>(c.id); break;
    case Op::NumCores: ir[ins.rd] = static_cast<std::int32_t>(ncores_); break;
    case Op::Barrier:
      ++barrier_arrived_;
      c.waiting_barrier = true;
      c.state = Core::State::Sleeping;
      if (barrier_arrived_ >= running_) release_barrier();
      break;
    case Op::CritEnter:
      lock_owner_ = static_cast<int>(c.id);
      break;
    case Op::CritExit:
      if (lock_owner_ != static_cast<int>(c.id)) {
        throw SimError{prog_.name + ": crit.exit without ownership (core " +
                       std::to_string(c.id) + ")"};
      }
      lock_owner_ = -1;
      break;
    case Op::DmaStart: {
      const auto src = static_cast<std::uint32_t>(ir[ins.rs1]);
      const auto dst = static_cast<std::uint32_t>(ir[ins.rs2]);
      const std::int32_t words = ir[ins.rd];
      if (words <= 0 || (src & 3U) != 0U || (dst & 3U) != 0U) {
        throw SimError{prog_.name + ": bad DMA descriptor"};
      }
      dma_.src = src;
      dma_.dst = dst;
      dma_.remaining = static_cast<std::uint32_t>(words);
      trace("/chip/cluster/dma/trace",
            "start src=" + hex_addr(src) + " dst=" + hex_addr(dst) +
                " words=" + std::to_string(words));
      break;
    }
    case Op::DmaWait:
      if (dma_.remaining > 0) {
        c.waiting_dma = true;
        c.state = Core::State::Sleeping;
      }
      break;
    case Op::MarkEnter:
      c.in_region = true;
      ++c.stats.instrs;  // count the marker itself
      ++icache_.uses;
      if (!region_open_) {
        region_open_ = true;
        region_begin_ = cycle_;
      }
      trace(pe_path(c.id, "trace"), "kernel_enter");
      break;
    case Op::MarkExit:
      c.in_region = false;
      region_end_ = cycle_;
      trace(pe_path(c.id, "trace"), "kernel_exit");
      break;
    case Op::Halt:
      c.state = Core::State::Halted;
      --running_;
      if (c.in_region) {
        c.in_region = false;
        region_end_ = cycle_;
      }
      // A core halting while others wait must not strand the barrier.
      if (running_ > 0 && barrier_arrived_ >= running_) release_barrier();
      return;  // no cycle charge for the halted state
  }

  // ---- opcode accounting (dynamic PE_* features) ----
  if (c.in_region || ins.op == Op::MarkExit) {
    CoreStats& s = c.stats;
    switch (ins.op_class()) {
      case kir::OpClass::Alu: ++s.n_alu; break;
      case kir::OpClass::Div: ++s.n_div; break;
      case kir::OpClass::Fp: ++s.n_fp; break;
      case kir::OpClass::FpDiv: ++s.n_fpdiv; break;
      case kir::OpClass::MemL1:
      case kir::OpClass::MemL2: break;  // handled below from the address
      case kir::OpClass::Branch: ++s.n_branch; break;
      case kir::OpClass::Nop: ++s.n_nop; break;
      case kir::OpClass::Sync: ++s.n_sync; break;
    }
    if (kir::is_memory(ins.op)) {
      if (mem_is_l2) {
        ++s.n_l2;
      } else {
        ++s.n_l1;
      }
    }
  }

  // ---- memory access bookkeeping + cycle charge ----
  if (kir::is_memory(ins.op)) {
    std::vector<Bank>& banks = mem_is_l2 ? l2_banks_ : l1_banks_;
    const std::size_t idx = (mem_addr / 4) % banks.size();
    const bool is_store = ins.op == Op::Sw || ins.op == Op::Fsw;
    if (is_store) {
      ++banks[idx].stats.writes;
    } else {
      ++banks[idx].stats.reads;
    }
    if (sink_ != nullptr) {
      trace("/chip/cluster/" + std::string(mem_is_l2 ? "l2" : "l1") +
                "/bank" + std::to_string(idx) + "/trace",
            std::string(is_store ? "write" : "read") +
                " addr=" + hex_addr(mem_addr));
    }
    if (mem_is_l2) {
      charge_cls = CycleClass::L2;
      stall_extra = cfg_.l2_latency - 1;
      stall_cls = CycleClass::L2;
    } else {
      charge_cls = CycleClass::L1;
    }
  }

  c.pc = next_pc;
  if (c.state == Core::State::Sleeping) {
    charge(c, CycleClass::Cg, false);  // barrier / DMA wait entry cycle
    return;
  }
  begin_stall(c, charge_cls, stall_extra, stall_cls, stall_idle);
}

}  // namespace pulpc::sim
