#include "sim/cluster.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>
#include <utility>

namespace pulpc::sim {

namespace {

using kir::Instr;
using kir::Op;

// 32-bit two's-complement arithmetic without UB.
std::int32_t add32(std::int32_t a, std::int32_t b) {
  return static_cast<std::int32_t>(static_cast<std::uint32_t>(a) +
                                   static_cast<std::uint32_t>(b));
}
std::int32_t sub32(std::int32_t a, std::int32_t b) {
  return static_cast<std::int32_t>(static_cast<std::uint32_t>(a) -
                                   static_cast<std::uint32_t>(b));
}
std::int32_t mul32(std::int32_t a, std::int32_t b) {
  return static_cast<std::int32_t>(static_cast<std::int64_t>(a) *
                                   static_cast<std::int64_t>(b));
}
// RISC-V division semantics: x/0 == -1, INT_MIN/-1 == INT_MIN.
std::int32_t div32(std::int32_t a, std::int32_t b) {
  if (b == 0) return -1;
  if (a == std::numeric_limits<std::int32_t>::min() && b == -1) return a;
  return a / b;
}
std::int32_t rem32(std::int32_t a, std::int32_t b) {
  if (b == 0) return a;
  if (a == std::numeric_limits<std::int32_t>::min() && b == -1) return 0;
  return a % b;
}

std::uint32_t fnv1a(const std::string& s) {
  std::uint32_t h = 2166136261U;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 16777619U;
  }
  return h;
}

std::uint32_t xorshift(std::uint32_t& x) {
  x ^= x << 13;
  x ^= x >> 17;
  x ^= x << 5;
  return x;
}

std::string hex_addr(std::uint32_t addr) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "0x%08x", addr);
  return buf;
}

}  // namespace

Cluster::Cluster(ClusterConfig cfg, SimOptions opt)
    : cfg_(cfg),
      opt_(opt),
      tcdm_(cfg.tcdm_bytes / 4, 0U),
      l2mem_(cfg.l2_bytes / 4, 0U),
      cores_(cfg.num_cores),
      l1_banks_(cfg.l1_banks),
      l2_banks_(cfg.l2_banks),
      fpus_(cfg.num_fpus) {
  for (unsigned i = 0; i < cfg_.num_cores; ++i) cores_[i].id = i;
}

void Cluster::load(const kir::Program& prog) {
  const std::string err = kir::verify(prog);
  if (!err.empty()) {
    throw std::invalid_argument("Cluster::load(" + prog.name + "): " + err);
  }
  for (const kir::BufferInfo& b : prog.buffers) {
    const bool fits =
        b.space == kir::MemSpace::Tcdm
            ? (cfg_.in_tcdm(b.base) && cfg_.in_tcdm(b.base + b.bytes() - 1))
            : (cfg_.in_l2(b.base) && cfg_.in_l2(b.base + b.bytes() - 1));
    if (!fits) {
      throw std::invalid_argument("Cluster::load(" + prog.name +
                                  "): buffer " + b.name +
                                  " outside its memory space");
    }
  }
  prog_ = prog;
  const std::size_t lines = prog_.code.size() / cfg_.icache_line + 1;
  icache_nlines_ = static_cast<std::uint32_t>(lines);
  icache_lines_.assign(cfg_.icache_private ? lines * cfg_.num_cores : lines,
                       false);
  // Build the dispatch cache: resolve the per-opcode classification
  // switches and the fetch-line division once per program instead of
  // once per executed cycle.
  decoded_.clear();
  decoded_.reserve(prog_.code.size());
  for (std::uint32_t pc = 0; pc < prog_.code.size(); ++pc) {
    const Instr& ins = prog_.code[pc];
    Decoded d;
    d.op = ins.op;
    d.rd = ins.rd;
    d.rs1 = ins.rs1;
    d.rs2 = ins.rs2;
    d.imm = ins.imm;
    d.unit = kir::op_class(ins.op);
    d.acct = ins.op_class();
    d.is_mem = kir::is_memory(ins.op);
    d.is_store = ins.op == Op::Sw || ins.op == Op::Fsw;
    d.line = pc / cfg_.icache_line;
    decoded_.push_back(d);
  }
}

std::uint32_t& Cluster::word_at(std::uint32_t addr) {
  return const_cast<std::uint32_t&>(std::as_const(*this).word_at(addr));
}

const std::uint32_t& Cluster::word_at(std::uint32_t addr) const {
  if ((addr & 3U) != 0U) {
    throw SimError{"misaligned access at " + hex_addr(addr)};
  }
  if (cfg_.in_tcdm(addr)) return tcdm_[(addr - cfg_.tcdm_base) / 4];
  if (cfg_.in_l2(addr)) return l2mem_[(addr - cfg_.l2_base) / 4];
  throw SimError{"unmapped access at " + hex_addr(addr)};
}

std::int32_t Cluster::read_i32(std::uint32_t addr) const {
  try {
    return static_cast<std::int32_t>(word_at(addr));
  } catch (const SimError& e) {
    throw std::out_of_range(e.message);
  }
}

float Cluster::read_f32(std::uint32_t addr) const {
  try {
    return std::bit_cast<float>(word_at(addr));
  } catch (const SimError& e) {
    throw std::out_of_range(e.message);
  }
}

void Cluster::write_i32(std::uint32_t addr, std::int32_t value) {
  try {
    word_at(addr) = static_cast<std::uint32_t>(value);
  } catch (const SimError& e) {
    throw std::out_of_range(e.message);
  }
}

void Cluster::write_f32(std::uint32_t addr, float value) {
  try {
    word_at(addr) = std::bit_cast<std::uint32_t>(value);
  } catch (const SimError& e) {
    throw std::out_of_range(e.message);
  }
}

void Cluster::init_buffers() {
  for (const kir::BufferInfo& b : prog_.buffers) {
    std::uint32_t seed = fnv1a(b.name) ^ (b.elems * 2654435761U);
    if (seed == 0) seed = 1;
    for (std::uint32_t i = 0; i < b.elems; ++i) {
      const std::uint32_t addr = b.base + i * 4;
      std::uint32_t word = 0;
      const std::uint32_t r = xorshift(seed);
      switch (b.init) {
        case kir::BufInit::Zero:
          break;
        case kir::BufInit::Ramp:
          word = b.elem == kir::DType::F32
                     ? std::bit_cast<std::uint32_t>(static_cast<float>(i))
                     : i;
          break;
        case kir::BufInit::Random:
          if (b.elem == kir::DType::F32) {
            const float f = static_cast<float>(r >> 8) / 16777216.0F;
            word = std::bit_cast<std::uint32_t>(f * 2.0F - 1.0F);
          } else {
            word = static_cast<std::uint32_t>(
                static_cast<std::int32_t>(r % 256U) - 128);
          }
          break;
        case kir::BufInit::RandomPos:
          if (b.elem == kir::DType::F32) {
            const float f =
                (static_cast<float>(r >> 8) + 1.0F) / 16777216.0F;
            word = std::bit_cast<std::uint32_t>(f);
          } else {
            word = r % 127U + 1U;
          }
          break;
      }
      word_at(addr) = word;
    }
  }
}

void Cluster::reset(unsigned ncores) {
  ncores_ = ncores;
  cycle_ = 0;
  running_ = ncores;
  barrier_arrived_ = 0;
  lock_owner_ = -1;
  region_open_ = false;
  region_begin_ = 0;
  region_end_ = 0;
  for (Core& c : cores_) {
    c.pc = prog_.entry;
    c.iregs.fill(0);
    c.fregs.fill(0.0F);
    c.state = c.id < ncores ? Core::State::Ready : Core::State::Halted;
    c.stall_remaining = 0;
    c.waiting_barrier = false;
    c.waiting_dma = false;
    c.wake_at = 0;
    c.in_region = false;
    c.last_trace_state = -1;
    c.stats = CoreStats{};
  }
  single_requester_ = false;
  ready_count_ = ncores;
  sleeping_count_ = 0;
  ff_cycles_ = 0;
  ff_jumps_ = 0;
  for (Bank& b : l1_banks_) b = Bank{};
  for (Bank& b : l2_banks_) b = Bank{};
  for (Fpu& f : fpus_) f = Fpu{};
  icache_lines_.assign(icache_lines_.size(), false);
  icache_ = IcacheStats{};
  dma_ = Dma{};
  std::fill(tcdm_.begin(), tcdm_.end(), 0U);
  std::fill(l2mem_.begin(), l2mem_.end(), 0U);
  init_buffers();
}

RunResult Cluster::run(unsigned ncores, TraceSink* sink) {
  if (prog_.code.empty()) {
    throw std::logic_error("Cluster::run: no program loaded");
  }
  if (ncores == 0 || ncores > cfg_.num_cores) {
    throw std::invalid_argument("Cluster::run: bad core count");
  }
  sink_ = sink;
  reset(ncores);

  // Fast-forwarding is a pure-speed path: it must not change stats (see
  // try_fast_forward) and is disabled under tracing, where the per-cycle
  // DMA/bank event stream has to stay complete.
  const bool fast_forward = opt_.fast_forward && sink_ == nullptr;
  RunResult res;
  try {
    while (running_ > 0) {
      if (cycle_ >= cfg_.max_cycles) {
        throw SimError{"cycle limit exceeded (deadlock or runaway kernel)"};
      }
      // The fast-forward attempt is gated on the O(1) ready-core count;
      // the expect-hint keeps the stepped path branch-free in compute
      // phases (the helper call otherwise costs ~15% wall clock on long
      // compute-bound kernels).
      if (__builtin_expect(fast_forward && ready_count_ == 0, 0) &&
          try_fast_forward()) {
        continue;
      }
      ++cycle_;
      step_dma();
      // TCDM/L2 arbitration fast path. ready + sleeping bounds from above
      // the cores that can issue a request this cycle (a sleeper may wake
      // and execute, a stalled or halted core cannot), so below two no
      // same-cycle bank conflict is possible and bank_grant skips claim
      // bookkeeping. Deliberately conservative and branchless: counting
      // which sleepers can actually wake costs more in this loop than the
      // bypass saves.
      single_requester_ = ready_count_ + sleeping_count_ < 2;
      const auto start = static_cast<unsigned>(cycle_ % ncores_);
      for (unsigned k = 0; k < ncores_; ++k) {
        step_core(cores_[(start + k) % ncores_]);
      }
    }
    res.ok = true;
  } catch (const SimError& e) {
    res.error = e.message;
  }
  sink_ = nullptr;
  res.ff_cycles = ff_cycles_;
  res.ff_jumps = ff_jumps_;

  RunStats& st = res.stats;
  st.ncores = ncores_;
  st.total_cores = cfg_.num_cores;
  st.total_cycles = cycle_;
  st.region_begin = region_open_ || region_end_ > 0 ? region_begin_ : 1;
  st.region_end = region_end_ > 0 ? region_end_ : cycle_;
  st.core.resize(cfg_.num_cores);
  for (unsigned i = 0; i < cfg_.num_cores; ++i) st.core[i] = cores_[i].stats;
  st.l1.resize(cfg_.l1_banks);
  for (unsigned i = 0; i < cfg_.l1_banks; ++i) st.l1[i] = l1_banks_[i].stats;
  st.l2.resize(cfg_.l2_banks);
  for (unsigned i = 0; i < cfg_.l2_banks; ++i) st.l2[i] = l2_banks_[i].stats;
  st.fpu.resize(cfg_.num_fpus);
  for (unsigned i = 0; i < cfg_.num_fpus; ++i) st.fpu[i] = fpus_[i].stats;
  st.icache = icache_;
  st.dma = dma_.stats;
  return res;
}

void Cluster::trace(const std::string& path, const std::string& msg) {
  if (sink_ != nullptr) sink_->event(cycle_, path, msg);
}

std::string Cluster::pe_path(unsigned core, const char* leaf) const {
  return "/chip/cluster/pe" + std::to_string(core) + "/" + leaf;
}

void Cluster::trace_state(Core& c, CycleClass cls, bool idle) {
  static constexpr const char* kNames[] = {"alu", "fp", "l1",
                                           "l2",  "wait", "cg"};
  const int code = static_cast<int>(cls) * 2 + (idle ? 1 : 0);
  if (code == c.last_trace_state) return;
  c.last_trace_state = code;
  std::string msg = "state=";
  msg += kNames[static_cast<int>(cls)];
  if (idle) msg += "_stall";
  sink_->event(cycle_, pe_path(c.id, "trace"), msg);
}

void Cluster::charge(Core& c, CycleClass cls, bool idle) {
  if (sink_ != nullptr) trace_state(c, cls, idle);
  if (!c.in_region) return;
  switch (cls) {
    case CycleClass::Alu: ++c.stats.cyc_alu; break;
    case CycleClass::Fp: ++c.stats.cyc_fp; break;
    case CycleClass::L1: ++c.stats.cyc_l1; break;
    case CycleClass::L2: ++c.stats.cyc_l2; break;
    case CycleClass::Wait: ++c.stats.cyc_wait; break;
    case CycleClass::Cg: ++c.stats.cyc_cg; break;
  }
  if (idle) ++c.stats.idle_cycles;
}

/// Bulk form of charge() for fast-forwarded stretches. Only ever called
/// with the trace sink detached (fast-forward is disabled under tracing),
/// so there is no state event to emit.
void Cluster::charge_n(Core& c, CycleClass cls, bool idle, std::uint64_t n) {
  if (!c.in_region) return;
  switch (cls) {
    case CycleClass::Alu: c.stats.cyc_alu += n; break;
    case CycleClass::Fp: c.stats.cyc_fp += n; break;
    case CycleClass::L1: c.stats.cyc_l1 += n; break;
    case CycleClass::L2: c.stats.cyc_l2 += n; break;
    case CycleClass::Wait: c.stats.cyc_wait += n; break;
    case CycleClass::Cg: c.stats.cyc_cg += n; break;
  }
  if (idle) c.stats.idle_cycles += n;
}

/// Replay `n` inert cycles for every core at once: a Stalled core charges
/// its recorded stall class (becoming Ready when the stall drains, exactly
/// as n single-cycle steps would), a Sleeping core charges clock-gated.
/// Callers guarantee n never exceeds any core's stall_remaining.
void Cluster::bulk_charge(std::uint64_t n) {
  if (n == 0) return;
  for (unsigned i = 0; i < ncores_; ++i) {
    Core& c = cores_[i];
    if (c.state == Core::State::Stalled) {
      charge_n(c, c.stall_class, c.stall_is_idle, n);
      c.stall_remaining -= static_cast<unsigned>(n);
      if (c.stall_remaining == 0) {
        c.state = Core::State::Ready;
        ++ready_count_;
      }
    } else if (c.state == Core::State::Sleeping) {
      charge_n(c, CycleClass::Cg, false, n);
    }
  }
}

/// Event-driven idle fast-forward (SimOptions::fast_forward). When every
/// running core is inert — Stalled (a fixed-class charge per cycle until
/// the stall drains) or Sleeping (clock-gated until its wake event) — no
/// per-cycle work can change the machine state except the DMA engine
/// moving words, so the clock can jump to the cycle before the earliest
/// wake event and the skipped cycles can be charged in bulk. Wake events:
///   * a stall draining: the core executes at cycle_ + stall_remaining + 1,
///   * a timed sleep (barrier wakeup latency): the core executes at wake_at,
///   * the DMA engine draining: a DMA waiter executes the same cycle the
///     last word lands (step_dma runs before the cores),
///   * the cycle limit: the jump clamps to max_cycles so the deadlock
///     check fires exactly where the stepped loop would.
/// Cores blocked on a barrier whose release is still pending have no wake
/// event of their own. Returns false (leaving all state untouched) when
/// any core is Ready or an event is due next cycle.
bool Cluster::try_fast_forward() {
  if (ready_count_ > 0) return false;  // O(1) out on any runnable core
  constexpr std::uint64_t kNoWake = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t wake = kNoWake;  ///< earliest cycle needing the stepped loop
  for (unsigned i = 0; i < ncores_; ++i) {
    const Core& c = cores_[i];
    switch (c.state) {
      case Core::State::Halted:
        continue;
      case Core::State::Ready:
        return false;
      case Core::State::Stalled:
        wake = std::min(wake, cycle_ + c.stall_remaining + 1);
        continue;
      case Core::State::Sleeping:
        if (c.waiting_dma) {
          if (dma_.remaining == 0) return false;  // wakes next cycle
          wake = std::min(wake, cycle_ + dma_.remaining);
        } else if (!c.waiting_barrier) {
          if (c.wake_at <= cycle_ + 1) return false;
          wake = std::min(wake, c.wake_at);
        }
        continue;
    }
  }
  // Jump to the last inert cycle. An all-barrier deadlock has no wake
  // event at all and rides the max_cycles clamp into the same SimError
  // (with the same charged stats) the stepped loop would produce.
  const std::uint64_t last = std::min(wake - 1, cfg_.max_cycles);
  if (last <= cycle_) return false;
  const std::uint64_t n = last - cycle_;
  // Short jumps lose: the scan + bulk_charge above costs about two
  // stepped cycles, so 1-cycle hops (a taken-branch bubble on a lone
  // running core) would be pure overhead. Thresholding is speed-only —
  // the stepped cycles produce the same stats by construction.
  if (n < 4) return false;
  if (dma_.remaining > 0) {
    // The DMA engine keeps moving one word per skipped cycle; its beats
    // mutate memory and bank counters, so they replay individually (still
    // far cheaper than stepping every core alongside them).
    const auto beats = std::min<std::uint64_t>(n, dma_.remaining);
    std::uint64_t beat = 0;
    try {
      while (beat < beats) {
        ++beat;
        step_dma();
      }
    } catch (...) {
      // A DMA fault at relative cycle `beat`: the stepped loop would have
      // charged every core for the beat-1 preceding cycles and faulted in
      // step_dma before stepping any core at cycle_ + beat.
      bulk_charge(beat - 1);
      cycle_ += beat;
      throw;
    }
  }
  bulk_charge(n);
  cycle_ += n;
  ff_cycles_ += n;
  ++ff_jumps_;
  return true;
}

void Cluster::begin_stall(Core& c, CycleClass issue_cls, unsigned extra,
                          CycleClass stall_cls, bool idle) {
  charge(c, issue_cls, false);
  if (extra > 0) {
    c.state = Core::State::Stalled;
    --ready_count_;
    c.stall_remaining = extra;
    c.stall_class = stall_cls;
    c.stall_is_idle = idle;
  }
}

void Cluster::release_barrier() {
  barrier_arrived_ = 0;
  for (unsigned i = 0; i < ncores_; ++i) {
    Core& c = cores_[i];
    if (c.waiting_barrier) {
      c.waiting_barrier = false;
      c.wake_at = cycle_ + cfg_.barrier_wakeup;
    }
  }
}

void Cluster::step_core(Core& c) {
  switch (c.state) {
    case Core::State::Halted:
      return;
    case Core::State::Sleeping: {
      if (c.waiting_dma && dma_.remaining == 0) {
        c.waiting_dma = false;
        c.wake_at = cycle_;
      }
      if (!c.waiting_barrier && !c.waiting_dma && cycle_ >= c.wake_at) {
        c.state = Core::State::Ready;
        ++ready_count_;
        --sleeping_count_;
        execute(c);
        return;
      }
      charge(c, CycleClass::Cg, false);
      return;
    }
    case Core::State::Stalled:
      charge(c, c.stall_class, c.stall_is_idle);
      if (--c.stall_remaining == 0) {
        c.state = Core::State::Ready;
        ++ready_count_;
      }
      return;
    case Core::State::Ready:
      execute(c);
      return;
  }
}

bool Cluster::bank_grant(std::uint32_t addr, Core& c, bool is_l2) {
  // Single-requester fast path: nobody else can claim a bank this cycle,
  // so the request is granted without touching the claim stamps (a stale
  // stamp from an earlier cycle can never read as a conflict later).
  if (single_requester_) return true;
  std::vector<Bank>& banks = is_l2 ? l2_banks_ : l1_banks_;
  const std::size_t idx = (addr / 4) % banks.size();
  Bank& bank = banks[idx];
  if (bank.claim_cycle == cycle_) {
    ++bank.stats.conflicts;
    if (sink_ != nullptr) {
      trace("/chip/cluster/" + std::string(is_l2 ? "l2" : "l1") + "/bank" +
                std::to_string(idx) + "/trace",
            "conflict");
    }
    charge(c, CycleClass::Wait, true);
    return false;
  }
  bank.claim_cycle = cycle_;
  return true;
}

void Cluster::step_dma() {
  if (dma_.remaining == 0) return;
  word_at(dma_.dst) = word_at(dma_.src);
  const auto count = [&](std::uint32_t addr, bool write) {
    const bool is_l1 = cfg_.in_tcdm(addr);
    std::vector<Bank>& banks = is_l1 ? l1_banks_ : l2_banks_;
    const std::size_t idx = (addr / 4) % banks.size();
    Bank& bank = banks[idx];
    if (write) {
      ++bank.stats.writes;
    } else {
      ++bank.stats.reads;
    }
    if (sink_ != nullptr) {
      trace("/chip/cluster/" + std::string(is_l1 ? "l1" : "l2") + "/bank" +
                std::to_string(idx) + "/trace",
            std::string(write ? "write" : "read") + " addr=" +
                hex_addr(addr));
    }
  };
  count(dma_.src, /*write=*/false);
  count(dma_.dst, /*write=*/true);
  ++dma_.stats.busy_cycles;
  ++dma_.stats.beats;
  dma_.src += 4;
  dma_.dst += 4;
  if (--dma_.remaining == 0) trace("/chip/cluster/dma/trace", "done");
}

void Cluster::execute(Core& c) {
  // The dispatch cache resolved opcode classification and the fetch line
  // at load() time; `ins` carries the same operand fields as the Instr.
  // Copied by value: a reference into decoded_ would force the compiler
  // to reload every field after each store (possible aliasing), wrecking
  // register allocation across the dispatch switch.
  const Decoded ins = decoded_[c.pc];

  // Instruction fetch through the I-cache (private per-core slices by
  // default, as in RI5CY clusters).
  const std::uint32_t line =
      ins.line + (cfg_.icache_private ? c.id * icache_nlines_ : 0U);
  if (!icache_lines_[line]) {
    icache_lines_[line] = true;
    ++icache_.refills;
    trace("/chip/cluster/icache/trace", "refill line=" + std::to_string(line));
    if (cfg_.icache_refill_stall > 0) {
      // All refill cycles (including this one) are contention-idle.
      charge(c, CycleClass::Wait, true);
      if (cfg_.icache_refill_stall > 1) {
        c.state = Core::State::Stalled;
        --ready_count_;
        c.stall_remaining = cfg_.icache_refill_stall - 1;
        c.stall_class = CycleClass::Wait;
        c.stall_is_idle = true;
      }
      return;  // refetch once the line has arrived
    }
  }

  auto& ir = c.iregs;
  auto& fr = c.fregs;

  // ---- resource acquisition; denied -> active-wait retry next cycle ----
  if (ins.unit == kir::OpClass::Fp || ins.unit == kir::OpClass::FpDiv) {
    Fpu& fpu = fpus_[cfg_.fpu_for(c.id)];
    if (fpu.claim_cycle == cycle_ || fpu.busy_until >= cycle_) {
      charge(c, CycleClass::Wait, true);
      return;
    }
    fpu.claim_cycle = cycle_;
    if (ins.unit == kir::OpClass::FpDiv) {
      fpu.busy_until = cycle_ + cfg_.fpdiv_cycles - 1;
      fpu.stats.busy_cycles += cfg_.fpdiv_cycles;
      if (sink_ != nullptr) {
        trace("/chip/cluster/fpu" + std::to_string(cfg_.fpu_for(c.id)) +
                  "/trace",
              "busy n=" + std::to_string(cfg_.fpdiv_cycles));
      }
    } else {
      fpu.stats.busy_cycles += 1;
      if (sink_ != nullptr) {
        trace("/chip/cluster/fpu" + std::to_string(cfg_.fpu_for(c.id)) +
                  "/trace",
              "busy n=1");
      }
    }
  }

  std::uint32_t mem_addr = 0;
  bool mem_is_l2 = false;
  if (ins.is_mem) {
    mem_addr = static_cast<std::uint32_t>(ir[ins.rs1]) +
               static_cast<std::uint32_t>(ins.imm);
    if ((mem_addr & 3U) != 0U) {
      throw SimError{prog_.name + ": misaligned access at " +
                     hex_addr(mem_addr) + " (pc=" + std::to_string(c.pc) +
                     ")"};
    }
    if (cfg_.in_tcdm(mem_addr)) {
      mem_is_l2 = false;
    } else if (cfg_.in_l2(mem_addr)) {
      mem_is_l2 = true;
    } else {
      throw SimError{prog_.name + ": unmapped access at " +
                     hex_addr(mem_addr) + " (pc=" + std::to_string(c.pc) +
                     ")"};
    }
    if (!bank_grant(mem_addr, c, mem_is_l2)) return;  // conflict
  }

  if (ins.op == Op::CritEnter && lock_owner_ >= 0 &&
      lock_owner_ != static_cast<int>(c.id)) {
    charge(c, CycleClass::Wait, true);  // spin on the contended lock
    return;
  }
  if (ins.op == Op::DmaStart && dma_.remaining > 0) {
    charge(c, CycleClass::Wait, true);  // DMA engine busy
    return;
  }

  // ---- issue ----
  if (c.in_region) {
    ++c.stats.instrs;
    ++icache_.uses;
  }
  if (sink_ != nullptr) {
    trace(pe_path(c.id, "insn"), kir::to_string(prog_.code[c.pc]));
  }

  std::uint32_t next_pc = c.pc + 1;
  CycleClass charge_cls = CycleClass::Alu;
  unsigned stall_extra = 0;
  CycleClass stall_cls = CycleClass::Wait;
  bool stall_idle = true;

  switch (ins.op) {
    // ---- integer ALU ----
    case Op::Add: ir[ins.rd] = add32(ir[ins.rs1], ir[ins.rs2]); break;
    case Op::Sub: ir[ins.rd] = sub32(ir[ins.rs1], ir[ins.rs2]); break;
    case Op::Mul: ir[ins.rd] = mul32(ir[ins.rs1], ir[ins.rs2]); break;
    case Op::Mac:
      ir[ins.rd] = add32(ir[ins.rd], mul32(ir[ins.rs1], ir[ins.rs2]));
      break;
    case Op::Slt: ir[ins.rd] = ir[ins.rs1] < ir[ins.rs2] ? 1 : 0; break;
    case Op::And: ir[ins.rd] = ir[ins.rs1] & ir[ins.rs2]; break;
    case Op::Or: ir[ins.rd] = ir[ins.rs1] | ir[ins.rs2]; break;
    case Op::Xor: ir[ins.rd] = ir[ins.rs1] ^ ir[ins.rs2]; break;
    case Op::Shl:
      ir[ins.rd] = static_cast<std::int32_t>(
          static_cast<std::uint32_t>(ir[ins.rs1]) << (ir[ins.rs2] & 31));
      break;
    case Op::Shr: ir[ins.rd] = ir[ins.rs1] >> (ir[ins.rs2] & 31); break;
    case Op::Min: ir[ins.rd] = std::min(ir[ins.rs1], ir[ins.rs2]); break;
    case Op::Max: ir[ins.rd] = std::max(ir[ins.rs1], ir[ins.rs2]); break;
    case Op::Abs:
      ir[ins.rd] = ir[ins.rs1] < 0 ? sub32(0, ir[ins.rs1]) : ir[ins.rs1];
      break;
    case Op::AddI: ir[ins.rd] = add32(ir[ins.rs1], ins.imm); break;
    case Op::MulI: ir[ins.rd] = mul32(ir[ins.rs1], ins.imm); break;
    case Op::AndI: ir[ins.rd] = ir[ins.rs1] & ins.imm; break;
    case Op::OrI: ir[ins.rd] = ir[ins.rs1] | ins.imm; break;
    case Op::XorI: ir[ins.rd] = ir[ins.rs1] ^ ins.imm; break;
    case Op::ShlI:
      ir[ins.rd] = static_cast<std::int32_t>(
          static_cast<std::uint32_t>(ir[ins.rs1]) << (ins.imm & 31));
      break;
    case Op::ShrI: ir[ins.rd] = ir[ins.rs1] >> (ins.imm & 31); break;
    case Op::SltI: ir[ins.rd] = ir[ins.rs1] < ins.imm ? 1 : 0; break;
    case Op::Li: ir[ins.rd] = ins.imm; break;
    case Op::Mv: ir[ins.rd] = ir[ins.rs1]; break;

    // ---- integer divider (serial, multi-cycle) ----
    case Op::Div:
      ir[ins.rd] = div32(ir[ins.rs1], ir[ins.rs2]);
      charge_cls = CycleClass::Alu;
      stall_extra = cfg_.div_cycles - 1;
      stall_cls = CycleClass::Alu;
      break;
    case Op::Rem:
      ir[ins.rd] = rem32(ir[ins.rs1], ir[ins.rs2]);
      charge_cls = CycleClass::Alu;
      stall_extra = cfg_.div_cycles - 1;
      stall_cls = CycleClass::Alu;
      break;

    // ---- floating point (shared FPU) ----
    case Op::FAdd: fr[ins.rd] = fr[ins.rs1] + fr[ins.rs2]; charge_cls = CycleClass::Fp; break;
    case Op::FSub: fr[ins.rd] = fr[ins.rs1] - fr[ins.rs2]; charge_cls = CycleClass::Fp; break;
    case Op::FMul: fr[ins.rd] = fr[ins.rs1] * fr[ins.rs2]; charge_cls = CycleClass::Fp; break;
    case Op::FMac:
      fr[ins.rd] += fr[ins.rs1] * fr[ins.rs2];
      charge_cls = CycleClass::Fp;
      break;
    case Op::FMin:
      fr[ins.rd] = std::min(fr[ins.rs1], fr[ins.rs2]);
      charge_cls = CycleClass::Fp;
      break;
    case Op::FMax:
      fr[ins.rd] = std::max(fr[ins.rs1], fr[ins.rs2]);
      charge_cls = CycleClass::Fp;
      break;
    case Op::FAbs:
      fr[ins.rd] = std::abs(fr[ins.rs1]);
      charge_cls = CycleClass::Fp;
      break;
    case Op::FNeg: fr[ins.rd] = -fr[ins.rs1]; charge_cls = CycleClass::Fp; break;
    case Op::FMv: fr[ins.rd] = fr[ins.rs1]; charge_cls = CycleClass::Fp; break;
    case Op::FLi:
      fr[ins.rd] = std::bit_cast<float>(ins.imm);
      charge_cls = CycleClass::Fp;
      break;
    case Op::FLt:
      ir[ins.rd] = fr[ins.rs1] < fr[ins.rs2] ? 1 : 0;
      charge_cls = CycleClass::Fp;
      break;
    case Op::FLe:
      ir[ins.rd] = fr[ins.rs1] <= fr[ins.rs2] ? 1 : 0;
      charge_cls = CycleClass::Fp;
      break;
    case Op::FEq:
      ir[ins.rd] = fr[ins.rs1] == fr[ins.rs2] ? 1 : 0;
      charge_cls = CycleClass::Fp;
      break;
    case Op::CvtSW:
      fr[ins.rd] = static_cast<float>(ir[ins.rs1]);
      charge_cls = CycleClass::Fp;
      break;
    case Op::CvtWS: {
      const float f = fr[ins.rs1];
      constexpr float kMax = 2147483520.0F;  // largest float < 2^31
      const float clamped = std::min(std::max(f, -kMax), kMax);
      ir[ins.rd] = static_cast<std::int32_t>(clamped);
      charge_cls = CycleClass::Fp;
      break;
    }
    case Op::FDiv:
      fr[ins.rd] = fr[ins.rs2] != 0.0F
                       ? fr[ins.rs1] / fr[ins.rs2]
                       : std::numeric_limits<float>::infinity();
      charge_cls = CycleClass::Fp;
      stall_extra = cfg_.fpdiv_cycles - 1;
      stall_cls = CycleClass::Fp;
      break;
    case Op::FSqrt:
      fr[ins.rd] = std::sqrt(std::max(fr[ins.rs1], 0.0F));
      charge_cls = CycleClass::Fp;
      stall_extra = cfg_.fpdiv_cycles - 1;
      stall_cls = CycleClass::Fp;
      break;

    // ---- memory ----
    case Op::Lw:
      ir[ins.rd] = static_cast<std::int32_t>(word_at(mem_addr));
      break;
    case Op::Flw:
      fr[ins.rd] = std::bit_cast<float>(word_at(mem_addr));
      break;
    case Op::Sw:
      word_at(mem_addr) = static_cast<std::uint32_t>(ir[ins.rs2]);
      break;
    case Op::Fsw:
      word_at(mem_addr) = std::bit_cast<std::uint32_t>(fr[ins.rs2]);
      break;

    // ---- control flow ----
    case Op::Beq:
    case Op::Bne:
    case Op::Blt:
    case Op::Bge: {
      const std::int32_t a = ir[ins.rs1];
      const std::int32_t b = ir[ins.rs2];
      const bool taken = ins.op == Op::Beq   ? a == b
                         : ins.op == Op::Bne ? a != b
                         : ins.op == Op::Blt ? a < b
                                             : a >= b;
      if (taken) {
        next_pc = static_cast<std::uint32_t>(ins.imm);
        stall_extra = cfg_.taken_branch_penalty;
        stall_cls = CycleClass::Wait;
      }
      break;
    }
    case Op::Jmp:
      next_pc = static_cast<std::uint32_t>(ins.imm);
      stall_extra = cfg_.taken_branch_penalty;
      stall_cls = CycleClass::Wait;
      break;

    // ---- active wait ----
    case Op::Nop:
      charge_cls = CycleClass::Wait;
      break;

    // ---- runtime ----
    case Op::CoreId: ir[ins.rd] = static_cast<std::int32_t>(c.id); break;
    case Op::NumCores: ir[ins.rd] = static_cast<std::int32_t>(ncores_); break;
    case Op::Barrier:
      ++barrier_arrived_;
      c.waiting_barrier = true;
      c.state = Core::State::Sleeping;
      --ready_count_;
      ++sleeping_count_;
      if (barrier_arrived_ >= running_) release_barrier();
      break;
    case Op::CritEnter:
      lock_owner_ = static_cast<int>(c.id);
      break;
    case Op::CritExit:
      if (lock_owner_ != static_cast<int>(c.id)) {
        throw SimError{prog_.name + ": crit.exit without ownership (core " +
                       std::to_string(c.id) + ")"};
      }
      lock_owner_ = -1;
      break;
    case Op::DmaStart: {
      const auto src = static_cast<std::uint32_t>(ir[ins.rs1]);
      const auto dst = static_cast<std::uint32_t>(ir[ins.rs2]);
      const std::int32_t words = ir[ins.rd];
      if (words <= 0 || (src & 3U) != 0U || (dst & 3U) != 0U) {
        throw SimError{prog_.name + ": bad DMA descriptor"};
      }
      dma_.src = src;
      dma_.dst = dst;
      dma_.remaining = static_cast<std::uint32_t>(words);
      trace("/chip/cluster/dma/trace",
            "start src=" + hex_addr(src) + " dst=" + hex_addr(dst) +
                " words=" + std::to_string(words));
      break;
    }
    case Op::DmaWait:
      if (dma_.remaining > 0) {
        c.waiting_dma = true;
        c.state = Core::State::Sleeping;
        --ready_count_;
        ++sleeping_count_;
      }
      break;
    case Op::MarkEnter:
      c.in_region = true;
      ++c.stats.instrs;  // count the marker itself
      ++icache_.uses;
      if (!region_open_) {
        region_open_ = true;
        region_begin_ = cycle_;
      }
      trace(pe_path(c.id, "trace"), "kernel_enter");
      break;
    case Op::MarkExit:
      c.in_region = false;
      region_end_ = cycle_;
      trace(pe_path(c.id, "trace"), "kernel_exit");
      break;
    case Op::Halt:
      c.state = Core::State::Halted;
      --ready_count_;
      --running_;
      if (c.in_region) {
        c.in_region = false;
        region_end_ = cycle_;
      }
      // A core halting while others wait must not strand the barrier.
      if (running_ > 0 && barrier_arrived_ >= running_) release_barrier();
      return;  // no cycle charge for the halted state
  }

  // ---- opcode accounting (dynamic PE_* features) ----
  if (c.in_region || ins.op == Op::MarkExit) {
    CoreStats& s = c.stats;
    switch (ins.acct) {
      case kir::OpClass::Alu: ++s.n_alu; break;
      case kir::OpClass::Div: ++s.n_div; break;
      case kir::OpClass::Fp: ++s.n_fp; break;
      case kir::OpClass::FpDiv: ++s.n_fpdiv; break;
      case kir::OpClass::MemL1:
      case kir::OpClass::MemL2: break;  // handled below from the address
      case kir::OpClass::Branch: ++s.n_branch; break;
      case kir::OpClass::Nop: ++s.n_nop; break;
      case kir::OpClass::Sync: ++s.n_sync; break;
    }
    if (ins.is_mem) {
      if (mem_is_l2) {
        ++s.n_l2;
      } else {
        ++s.n_l1;
      }
    }
  }

  // ---- memory access bookkeeping + cycle charge ----
  if (ins.is_mem) {
    std::vector<Bank>& banks = mem_is_l2 ? l2_banks_ : l1_banks_;
    const std::size_t idx = (mem_addr / 4) % banks.size();
    const bool is_store = ins.is_store;
    if (is_store) {
      ++banks[idx].stats.writes;
    } else {
      ++banks[idx].stats.reads;
    }
    if (sink_ != nullptr) {
      trace("/chip/cluster/" + std::string(mem_is_l2 ? "l2" : "l1") +
                "/bank" + std::to_string(idx) + "/trace",
            std::string(is_store ? "write" : "read") +
                " addr=" + hex_addr(mem_addr));
    }
    if (mem_is_l2) {
      charge_cls = CycleClass::L2;
      stall_extra = cfg_.l2_latency - 1;
      stall_cls = CycleClass::L2;
    } else {
      charge_cls = CycleClass::L1;
    }
  }

  c.pc = next_pc;
  if (c.state == Core::State::Sleeping) {
    charge(c, CycleClass::Cg, false);  // barrier / DMA wait entry cycle
    return;
  }
  begin_stall(c, charge_cls, stall_extra, stall_cls, stall_idle);
}

}  // namespace pulpc::sim
