// Cycle-stepped simulator of the PULP cluster (the paper's GVSOC
// substitute). Models, per cycle:
//   * 8 in-order RI5CY-like cores interpreting KIR,
//   * a 16-bank word-interleaved TCDM with per-cycle arbitration and
//     conflict stalls,
//   * a multi-banked L2 with 15-cycle access latency,
//   * 4 single-stage FPUs shared between cores with a fixed mapping,
//   * a shared I-cache (per-line cold refills),
//   * a DMA engine (1 word / cycle),
//   * an event unit implementing barriers with clock-gating and the
//     cluster-wide critical-section lock (contending cores active-wait).
//
// Every cycle of every active core is charged to exactly one operating
// state (alu / fp / l1 / l2 / wait / clock-gated), which is what the
// Table I energy model prices and what the Table III dynamic features
// summarise. With a TraceSink attached, the run also emits a GVSOC-style
// event trace that src/trace can parse back into the same statistics.
//
// The engine is event-driven where the modelled hardware is idle: when
// every running core is blocked (barrier wait, DMA wait, L2 access in
// flight, multi-cycle divider/FPU occupancy) the clock jumps straight to
// the next wake event and the skipped cycles are bulk-charged to each
// core's current operating state — see SimOptions::fast_forward and
// DESIGN.md "Event-driven simulator". Stats are bit-identical to the
// cycle-stepped path by construction and by test.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "kir/ir.hpp"
#include "sim/config.hpp"
#include "sim/stats.hpp"
#include "sim/trace_sink.hpp"

namespace pulpc::sim {

/// Simulation failure (memory fault, misalignment, bad DMA descriptor).
struct SimError {
  std::string message;
};

struct RunResult {
  RunStats stats;
  bool ok = false;
  std::string error;
  /// Cycles advanced by event-driven fast-forward jumps instead of being
  /// stepped one by one (see SimOptions::fast_forward). Diagnostic only:
  /// deliberately kept out of RunStats so persisted artifacts and their
  /// fingerprints are identical whichever path produced them.
  std::uint64_t ff_cycles = 0;
  /// Number of fast-forward jumps taken.
  std::uint64_t ff_jumps = 0;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig cfg = {}, SimOptions opt = {});

  /// Load a verified program. Throws std::invalid_argument if the
  /// program fails kir::verify or a buffer does not fit its memory.
  void load(const kir::Program& prog);

  /// Execute the loaded program on `ncores` cores (1..num_cores).
  /// Memory is re-initialised from the program's buffer declarations, so
  /// repeated runs at different core counts are independent, as in the
  /// paper's eight-configuration sweep. Never throws for runtime faults;
  /// they are reported in RunResult.
  [[nodiscard]] RunResult run(unsigned ncores, TraceSink* sink = nullptr);

  // Memory inspection (for tests and result verification). Throws
  // std::out_of_range for unmapped addresses.
  [[nodiscard]] std::int32_t read_i32(std::uint32_t addr) const;
  [[nodiscard]] float read_f32(std::uint32_t addr) const;
  void write_i32(std::uint32_t addr, std::int32_t value);
  void write_f32(std::uint32_t addr, float value);

  [[nodiscard]] const ClusterConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const SimOptions& options() const noexcept { return opt_; }
  [[nodiscard]] const kir::Program& program() const noexcept { return prog_; }

 private:
  /// Operating state a core cycle is charged to.
  enum class CycleClass : std::uint8_t { Alu, Fp, L1, L2, Wait, Cg };

  struct Core {
    std::uint32_t pc = 0;
    std::array<std::int32_t, kir::kNumRegs> iregs{};
    std::array<float, kir::kNumRegs> fregs{};
    enum class State : std::uint8_t { Ready, Stalled, Sleeping, Halted };
    State state = State::Ready;
    unsigned id = 0;
    unsigned stall_remaining = 0;
    CycleClass stall_class = CycleClass::Wait;
    bool stall_is_idle = false;
    bool waiting_barrier = false;
    bool waiting_dma = false;
    std::uint64_t wake_at = 0;
    bool in_region = false;
    int last_trace_state = -1;  ///< encoded (class, idle) of last state event
    CoreStats stats;
  };

  struct Bank {
    std::uint64_t claim_cycle = 0;  ///< cycle stamp of the current claim
    BankStats stats;
  };

  struct Fpu {
    std::uint64_t claim_cycle = 0;
    std::uint64_t busy_until = 0;  ///< last cycle (inclusive) of occupancy
    FpuStats stats;
  };

  struct Dma {
    std::uint32_t src = 0;
    std::uint32_t dst = 0;
    std::uint32_t remaining = 0;
    DmaStats stats;
  };

  /// Predecoded instruction: a flat per-pc record carrying everything the
  /// per-cycle dispatch needs — operand fields, the execution-unit and
  /// accounting classes, memory/store flags and the I-cache line — so
  /// execute() never re-derives them through the kir::op_class /
  /// kir::is_memory switches. Built once per load().
  struct Decoded {
    kir::Op op = kir::Op::Nop;
    std::uint8_t rd = 0;
    std::uint8_t rs1 = 0;
    std::uint8_t rs2 = 0;
    std::int32_t imm = 0;
    kir::OpClass unit = kir::OpClass::Nop;  ///< op_class(op): resource gate
    kir::OpClass acct = kir::OpClass::Nop;  ///< Instr::op_class(): accounting
    bool is_mem = false;
    bool is_store = false;
    std::uint32_t line = 0;  ///< I-cache line of this pc (per-core offset added at fetch)
  };

  void reset(unsigned ncores);
  void init_buffers();
  void step_core(Core& c);
  void execute(Core& c);
  void step_dma();
  void charge(Core& c, CycleClass cls, bool idle);
  void charge_n(Core& c, CycleClass cls, bool idle, std::uint64_t n);
  void begin_stall(Core& c, CycleClass issue_cls, unsigned extra,
                   CycleClass stall_cls, bool idle);
  void release_barrier();
  [[nodiscard]] bool try_fast_forward();
  void bulk_charge(std::uint64_t n);

  [[nodiscard]] std::uint32_t& word_at(std::uint32_t addr);
  [[nodiscard]] const std::uint32_t& word_at(std::uint32_t addr) const;
  [[nodiscard]] bool bank_grant(std::uint32_t addr, Core& c, bool is_l2);

  void trace(const std::string& path, const std::string& msg);
  void trace_state(Core& c, CycleClass cls, bool idle);
  [[nodiscard]] std::string pe_path(unsigned core, const char* leaf) const;

  ClusterConfig cfg_;
  SimOptions opt_;
  kir::Program prog_;
  std::vector<Decoded> decoded_;   ///< dispatch cache, parallel to prog_.code
  std::uint32_t icache_nlines_ = 0;  ///< lines per core slice
  std::vector<std::uint32_t> tcdm_;
  std::vector<std::uint32_t> l2mem_;
  std::vector<Core> cores_;
  std::vector<Bank> l1_banks_;
  std::vector<Bank> l2_banks_;
  std::vector<Fpu> fpus_;
  std::vector<bool> icache_lines_;
  Dma dma_;
  IcacheStats icache_;

  unsigned ncores_ = 0;        ///< cores participating in this run
  std::uint64_t cycle_ = 0;
  unsigned running_ = 0;       ///< non-halted participating cores
  /// Exact counts of cores in Ready / Sleeping state, maintained at every
  /// transition so the per-cycle fast-forward and arbitration-mode checks
  /// are O(1) instead of an O(ncores) scan (the scan showed up as ~50%
  /// overhead on long compute-bound kernels).
  unsigned ready_count_ = 0;
  unsigned sleeping_count_ = 0;
  unsigned barrier_arrived_ = 0;
  int lock_owner_ = -1;
  bool region_open_ = false;
  std::uint64_t region_begin_ = 0;
  std::uint64_t region_end_ = 0;
  /// At most one core can issue a TCDM/L2 request this cycle, so
  /// bank_grant skips claim bookkeeping (no same-cycle conflict possible).
  bool single_requester_ = false;
  std::uint64_t ff_cycles_ = 0;  ///< cycles covered by fast-forward jumps
  std::uint64_t ff_jumps_ = 0;
  TraceSink* sink_ = nullptr;
};

}  // namespace pulpc::sim
