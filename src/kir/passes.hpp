// Static-analysis pass framework over lowered KIR. A PassManager runs a
// sequence of analysis passes against one Program; each pass appends
// structured Diagnostic records (severity + pass name + location) to a
// shared VerifyReport. The AnalysisContext lazily builds and caches the
// facts several passes share: the CFG, immediate postdominators, and the
// SPMD divergence analysis (which registers / branches / blocks may
// behave differently across cores under the lowering conventions).
//
// The framework is the substrate for kir/verify.hpp (barrier, race,
// bounds, and register-use passes) but is deliberately generic: the DSL
// layer reuses Diagnostic for validate_spec, and future passes (feature
// extractors, cost checkers) can plug in without touching the driver.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "kir/cfg.hpp"
#include "kir/ir.hpp"

namespace pulpc::kir {

/// Diagnostic severity. `Error` marks a proven defect (verification
/// fails); `Warning` marks a likely defect (fails under --werror);
/// `Note` records an analysis-precision loss (never fails the build).
enum class Severity : std::uint8_t { Note, Warning, Error };

[[nodiscard]] const char* to_string(Severity s) noexcept;

/// One structured finding. `location` is human-readable ("instr 42: sw
/// ..." for KIR passes, a statement path like "body[2].for(i)" for DSL
/// validation); `instr` is the instruction index when one applies.
struct Diagnostic {
  Severity severity = Severity::Error;
  std::string pass;
  std::string location;
  std::int32_t instr = -1;  ///< instruction index, -1 when not applicable
  std::string message;

  /// "error [race] instr 42 (sw ...): overlapping chunks ..."
  [[nodiscard]] std::string to_string() const;
};

/// Aggregated result of a verification run.
struct VerifyReport {
  std::string program;  ///< Program::name of the verified kernel
  std::vector<Diagnostic> diags;

  [[nodiscard]] std::size_t count(Severity s) const noexcept;
  [[nodiscard]] std::size_t errors() const noexcept {
    return count(Severity::Error);
  }
  [[nodiscard]] std::size_t warnings() const noexcept {
    return count(Severity::Warning);
  }
  [[nodiscard]] std::size_t notes() const noexcept {
    return count(Severity::Note);
  }
  /// No error-severity diagnostics (warnings/notes allowed).
  [[nodiscard]] bool ok() const noexcept { return errors() == 0; }
  /// Multi-line dump, one diagnostic per line, errors first.
  [[nodiscard]] std::string to_string() const;
};

/// SPMD divergence facts: which values and control edges may differ
/// across cores. Computed by a mutual fixpoint of (a) register taint
/// from CoreId / TCDM loads and (b) control-dependence on divergent
/// branches bounded by the branch block's immediate postdominator.
struct DivergenceInfo {
  /// Per-instruction IN-state: bit r (r < 32) set = integer register r,
  /// bit 32+f set = fp register f, may hold different values on
  /// different cores when this instruction executes.
  std::vector<std::uint64_t> div_in;
  /// Per-block: block executes under divergent control (some cores may
  /// run it while others do not, before reconvergence).
  std::vector<bool> divergent_block;
  /// Per-block: the block's terminator is a conditional branch whose
  /// condition registers are divergent.
  std::vector<bool> divergent_branch;
};

/// Shared lazily-computed analysis facts for one program. Passes request
/// what they need; results are cached for the lifetime of the context.
class AnalysisContext {
 public:
  explicit AnalysisContext(const Program& prog) : prog_(prog) {}

  [[nodiscard]] const Program& prog() const noexcept { return prog_; }
  [[nodiscard]] const Cfg& cfg();
  /// Immediate postdominator of each block (index into cfg().blocks);
  /// kNoBlock for blocks whose only postdominator is the virtual exit.
  [[nodiscard]] const std::vector<std::uint32_t>& ipostdom();
  [[nodiscard]] const DivergenceInfo& divergence();

  /// First MarkEnter index (0 when absent). Instructions before it form
  /// the runtime prologue (zero-reg / core-id setup) that several passes
  /// exempt from style checks.
  [[nodiscard]] std::uint32_t kernel_begin();

  static constexpr std::uint32_t kNoBlock = 0xffff'ffffu;

 private:
  const Program& prog_;
  std::optional<Cfg> cfg_;
  std::optional<std::vector<std::uint32_t>> ipostdom_;
  std::optional<DivergenceInfo> divergence_;
  std::optional<std::uint32_t> kernel_begin_;
};

/// One analysis pass. Implementations must be reusable across programs:
/// all per-program state lives in the AnalysisContext or on the stack.
class Pass {
 public:
  virtual ~Pass() = default;
  [[nodiscard]] virtual const char* name() const noexcept = 0;
  virtual void run(AnalysisContext& ctx, std::vector<Diagnostic>& out) = 0;
};

/// Runs registered passes in order and aggregates their diagnostics.
class PassManager {
 public:
  void add(std::unique_ptr<Pass> pass) { passes_.push_back(std::move(pass)); }
  [[nodiscard]] std::size_t size() const noexcept { return passes_.size(); }

  /// Run every pass over `prog`. Diagnostics are sorted by (instr,
  /// pass, severity) and exact duplicates removed, so the report is
  /// byte-stable for a given program regardless of registration order.
  [[nodiscard]] VerifyReport run(const Program& prog);

 private:
  std::vector<std::unique_ptr<Pass>> passes_;
};

/// Helper for pass implementations: "instr 42 (sw ...)".
[[nodiscard]] std::string instr_location(const Program& prog,
                                         std::uint32_t pc);

}  // namespace pulpc::kir
