#include "kir/costpass.hpp"

#include <string>
#include <utility>

namespace pulpc::kir {

void CostBoundPass::run(AnalysisContext& ctx, std::vector<Diagnostic>& out) {
  CostReport rep = analyze_cost(ctx.prog(), params_);
  for (const std::string& note : rep.notes) {
    Diagnostic d;
    d.severity = Severity::Note;
    d.pass = name();
    d.location = "kernel " + ctx.prog().name;
    d.message = note;
    out.push_back(std::move(d));
  }
  reports_.push_back(std::move(rep));
}

}  // namespace pulpc::kir
