// Static cost/energy bound analyzer over KIR: an abstract interpretation
// of a lowered program that computes, per core count, a sound [lo, hi]
// interval for the kernel-region cycle count and for total energy, without
// simulating. The walk runs once per (core count, core id) pair with the
// core id and core count bound to concrete values, so the chunked/cyclic
// parallel-loop prologues constant-fold and per-core trip counts resolve
// exactly; loaded data stays opaque (intervals), so data-dependent
// branches price as [min path, max path].
//
// Soundness argument (see DESIGN.md "Static cost analyzer"):
//   lower bound:  the region window is at least any single core's
//     residency = charged cycles + barrier wakeups + DMA sleeps + its
//     uncharged exit-marker cycle.
//   upper bound:  every window cycle either has >= 1 core in a charged
//     non-clock-gated state (bounded by the sum of per-core charged-cycle
//     upper bounds plus contention bounds), or every running core is
//     clock-gated, which only happens inside barrier wakeup windows
//     (barrier_wakeup cycles per barrier episode), DMA sleeps (bounded by
//     the per-core DMA wait bounds), or the <= 2 cycle exit tail.
// Energy bounds are linear rearrangements of the Table I model over
// global state-cycle totals (the clock-gate rate cancels, so barrier
// arrival skew never needs to be bounded).
//
// This header must not depend on src/sim or src/energy (they depend on
// kir); CostParams duplicates the timing/Table I defaults, and
// energy::cost_params() builds one from live sim/energy configs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "kir/ir.hpp"
#include "kir/symmodel.hpp"

namespace pulpc::kir {

/// Timing and energy constants of the analyzed cluster. Defaults mirror
/// sim::ClusterConfig and the paper's Table I energy model
/// (energy::EnergyModel); use energy::cost_params() to stay in sync with
/// a non-default configuration.
struct CostParams {
  // ---- cluster geometry / timing (sim::ClusterConfig) ----
  unsigned max_cores = 8;    ///< analyze core counts 1..max_cores
  unsigned total_cores = 8;  ///< physical PEs (leakage accrues for all)
  unsigned div_cycles = 12;
  unsigned fpdiv_cycles = 10;
  unsigned l2_latency = 15;
  unsigned taken_branch_penalty = 1;
  unsigned barrier_wakeup = 8;
  unsigned icache_line = 16;
  unsigned icache_refill_stall = 5;
  unsigned l1_banks = 16;
  unsigned l2_banks = 32;
  unsigned num_fpus = 4;

  // ---- Table I energy rates, femtojoules (energy::EnergyModel) ----
  double pe_leakage = 182.0;
  double pe_nop = 1212.0;
  double pe_alu = 2558.0;
  double pe_fp = 2468.0;
  double pe_l1 = 3242.0;
  double pe_l2 = 1011.0;
  double pe_cg = 20.0;
  double fpu_leakage = 191.0;
  double fpu_operative = 299.0;
  double fpu_idle = 0.0;
  double l1_leakage = 49.0;
  double l1_read = 2543.0;
  double l1_write = 2568.0;
  double l1_idle = 64.0;
  double l2_leakage = 105.0;
  double l2_read = 2942.0;
  double l2_write = 3480.0;
  double l2_idle = 13.0;
  double icache_leakage = 774.0;
  double icache_use = 4492.0;
  double icache_refill = 5932.0;
  double dma_leakage = 165.0;
  double dma_transfer = 1750.0;
  double dma_idle = 46.0;
  double other_leakage = 655.0;
  double other_active = 2702.0;
};

/// Per-loop attribution from the core-0 walk: trip count executed by
/// core 0 and that loop's contribution to core 0's charged cycles, per
/// single entry of the loop (inner loops report one enclosing iteration).
struct LoopCost {
  std::uint32_t header = 0;  ///< pc of the loop header branch
  bool parallel = false;
  Ival trip{0, 0};    ///< core-0 iterations
  Ival cycles{0, 0};  ///< core-0 charged cycles spent in the loop
};

/// Sound bounds for one core count.
struct ConfigCost {
  unsigned cores = 1;
  Ival cycles{0, 0};  ///< kernel-region window [lo, hi]
  double energy_lo_fj = 0.0;
  double energy_hi_fj = 0.0;
  // Attribution of the upper bound (all already included in cycles.hi).
  Ival busy0{0, 0};                ///< core-0 charged cycles (work floor)
  long long barrier_cycles = 0;    ///< barrier wakeup contribution to hi
  long long contention_hi = 0;     ///< TCDM/L2/FPU/crit bound added to hi
  Ival dma_wait{0, 0};             ///< DMA sleep cycles summed over cores
  long long par_iters0_hi = 0;     ///< core-0 parallel-loop iterations
  bool bounded = true;             ///< hi < kInf
  std::vector<LoopCost> loops;     ///< per-loop attribution (core-0 walk)

  [[nodiscard]] double tightness() const noexcept {
    return cycles.lo > 0 && bounded
               ? static_cast<double>(cycles.hi) /
                     static_cast<double>(cycles.lo)
               : (bounded ? 1.0 : static_cast<double>(kInf));
  }
};

/// Full report for one program: one ConfigCost per core count
/// 1..max_cores plus precision-loss notes (unbounded trips, irregular
/// control flow the walker could not summarize).
struct CostReport {
  std::string program;
  std::vector<ConfigCost> configs;
  std::vector<std::string> notes;

  [[nodiscard]] const ConfigCost* config(unsigned cores) const noexcept;
  /// Core count with the smallest energy upper bound (the static
  /// stand-in for the paper's energy-optimal label).
  [[nodiscard]] unsigned best_cores_by_energy_hi() const noexcept;
  [[nodiscard]] std::string to_string() const;
};

/// Analyze a lowered program. Never simulates; cost is linear in code
/// size times max_cores^2. Unanalyzable shapes degrade to [0, kInf]
/// (bounded == false) rather than failing.
[[nodiscard]] CostReport analyze_cost(const Program& prog,
                                      const CostParams& params = {});

}  // namespace pulpc::kir
