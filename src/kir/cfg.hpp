// Control-flow graph over a flat KIR program: basic-block boundaries,
// successor edges, and register liveness (iterative backward dataflow).
// Used by the optimiser; also handy for custom analyses.
#pragma once

#include <cstdint>
#include <vector>

#include "kir/ir.hpp"

namespace pulpc::kir {

/// One basic block: a maximal straight-line range [begin, end) of the
/// instruction vector. The terminator (if any) is the last instruction.
struct BasicBlock {
  std::uint32_t begin = 0;
  std::uint32_t end = 0;
  /// Indices into Cfg::blocks of the possible successors.
  std::vector<std::uint32_t> succs;
};

struct Cfg {
  std::vector<BasicBlock> blocks;
  /// blocks index of the block starting at each instruction (or the
  /// containing block, for every instruction index).
  std::vector<std::uint32_t> block_of;
};

/// Build the CFG. Leaders: instruction 0, every branch target, and every
/// instruction following a branch. Halt ends a block with no successors.
[[nodiscard]] Cfg build_cfg(const Program& prog);

/// Per-instruction liveness of the 64 register slots (32 integer + 32
/// float): live_out[i] is the set of slots whose value may still be read
/// after instruction i executes. Computed by iterative backward dataflow
/// over the CFG. Returned as bitmasks (bit s = slot s live).
[[nodiscard]] std::vector<std::uint64_t> live_out(const Program& prog,
                                                  const Cfg& cfg);

}  // namespace pulpc::kir
