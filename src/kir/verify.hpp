// The KIR verifier: a standard pass pipeline over lowered kernels that
// proves (or refutes) the SPMD well-formedness properties the dataset
// relies on — uniform barrier execution, race-free parallel chunks,
// in-bounds buffer accesses, and sane register use. See DESIGN.md for
// the analysis domains and their soundness assumptions.
//
//   kir::VerifyReport report = kir::verify_program(prog);
//   if (!report.ok()) throw std::runtime_error(report.to_string());
//
// Severity policy: Error = proven defect under the lowering contract;
// Warning = likely defect (promoted to failure by --werror consumers);
// Note = the analysis lost precision and could not prove safety (never
// fails a build — non-affine index arithmetic such as FFT bit twiddling
// lands here by design).
#pragma once

#include <memory>

#include "kir/passes.hpp"

namespace pulpc::kir {

struct VerifyOptions {
  /// Largest core count the kernel may run with (the paper's cluster
  /// has 8). Bounds CoreId/NumCores intervals in the analyses.
  int max_cores = 8;
  /// Report dead stores (register results never read). Style-level;
  /// disable for hand-written KIR that keeps scratch registers around.
  bool dead_stores = true;
  /// Cap on diagnostics emitted per pass, so a single systematic defect
  /// does not flood the report.
  int max_diags_per_pass = 32;
};

/// Individual pass factories (exposed for targeted tests).
[[nodiscard]] std::unique_ptr<Pass> make_barrier_pass(const VerifyOptions& opt);
[[nodiscard]] std::unique_ptr<Pass> make_race_pass(const VerifyOptions& opt);
[[nodiscard]] std::unique_ptr<Pass> make_bounds_pass(const VerifyOptions& opt);
[[nodiscard]] std::unique_ptr<Pass> make_reguse_pass(const VerifyOptions& opt);

/// Register the standard pipeline: barrier, race, bounds, reguse.
void add_standard_passes(PassManager& pm, const VerifyOptions& opt = {});

/// Run the standard pipeline. Structurally invalid programs (failing
/// kir::verify) yield a single "structure" Error and skip the semantic
/// passes rather than analysing garbage.
[[nodiscard]] VerifyReport verify_program(const Program& prog,
                                          const VerifyOptions& opt = {});

}  // namespace pulpc::kir
