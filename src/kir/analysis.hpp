// Compile-time analysis over KIR: trip-count-weighted opcode statistics,
// hottest-block extraction (input to the machine-code analyser), and the
// primitive quantities the paper's RAW static features are built from.
#pragma once

#include <cstdint>
#include <vector>

#include "kir/ir.hpp"

namespace pulpc::kir {

/// Trip-count-weighted static opcode statistics. Each instruction is
/// weighted by the product of the (statically known) trip counts of the
/// loops enclosing it, so the counts estimate the dynamic opcode mix of a
/// full kernel execution without running it — the same information the
/// paper reads off the LLVM-IR.
struct StaticCounts {
  double alu = 0;       ///< integer ALU opcodes
  double div = 0;       ///< integer divider opcodes
  double fp = 0;        ///< single-cycle FP opcodes
  double fpdiv = 0;     ///< FP divide / sqrt opcodes
  double load_tcdm = 0;
  double store_tcdm = 0;
  double load_l2 = 0;
  double store_l2 = 0;
  double branch = 0;
  double nop = 0;
  double sync = 0;      ///< barriers, critical sections, runtime queries

  [[nodiscard]] double tcdm() const noexcept { return load_tcdm + store_tcdm; }
  [[nodiscard]] double l2() const noexcept { return load_l2 + store_l2; }
  /// "op" in the paper's RAW feature table: ALU + FP + JUMP opcodes.
  [[nodiscard]] double op() const noexcept {
    return alu + div + fp + fpdiv + branch;
  }
  [[nodiscard]] double total() const noexcept {
    return op() + tcdm() + l2() + nop + sync;
  }
};

/// Options for static counting.
struct StaticCountOptions {
  /// Weight assumed for a loop whose trip count is not statically known,
  /// expressed as a fraction of the enclosing weight's per-iteration trip.
  /// The front-end resolves most unknown trips (triangular loops) itself;
  /// this is the last-resort fallback multiplier.
  double unknown_trip = 8.0;
};

/// Compute trip-weighted opcode statistics for a whole program.
[[nodiscard]] StaticCounts static_counts(const Program& prog,
                                         const StaticCountOptions& opt = {});

/// Static weight (product of enclosing trip counts) of each instruction.
[[nodiscard]] std::vector<double> instruction_weights(
    const Program& prog, const StaticCountOptions& opt = {});

/// Average number of iterations that can be carried concurrently in
/// parallel regions (the paper's `avgws` RAW feature): the mean of
/// `total_iters` over all parallel regions; 1.0 for fully serial kernels.
[[nodiscard]] double avg_parallel_iters(const Program& prog);

/// Amount of data the kernel works on in bytes (the paper's `transfer`
/// RAW feature): the sum of all buffer sizes.
[[nodiscard]] double transfer_bytes(const Program& prog);

/// The hottest straight-line block: the body of the innermost loop with
/// the largest total static weight (header compare and latch branch
/// excluded where possible). This is the snippet the machine-code
/// analyser fingerprints, mirroring how the paper feeds kernels to
/// LLVM-MCA. Falls back to the whole program when there are no loops.
[[nodiscard]] std::vector<Instr> hottest_block(const Program& prog);

}  // namespace pulpc::kir
