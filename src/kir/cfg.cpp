#include "kir/cfg.hpp"

#include <algorithm>

#include "kir/operands.hpp"

namespace pulpc::kir {

Cfg build_cfg(const Program& prog) {
  const auto n = static_cast<std::uint32_t>(prog.code.size());
  std::vector<bool> leader(n, false);
  if (n == 0) return {};
  leader[0] = true;
  for (std::uint32_t i = 0; i < n; ++i) {
    const Instr& ins = prog.code[i];
    if (is_branch(ins.op)) {
      leader[static_cast<std::uint32_t>(ins.imm)] = true;
      if (i + 1 < n) leader[i + 1] = true;
    }
    if (ins.op == Op::Halt && i + 1 < n) leader[i + 1] = true;
  }

  Cfg cfg;
  cfg.block_of.assign(n, 0);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (leader[i]) {
      if (!cfg.blocks.empty()) cfg.blocks.back().end = i;
      cfg.blocks.push_back(BasicBlock{i, n, {}});
    }
    cfg.block_of[i] = static_cast<std::uint32_t>(cfg.blocks.size() - 1);
  }

  for (std::uint32_t b = 0; b < cfg.blocks.size(); ++b) {
    BasicBlock& blk = cfg.blocks[b];
    const Instr& last = prog.code[blk.end - 1];
    if (last.op == Op::Halt) continue;  // no successors
    if (is_branch(last.op)) {
      blk.succs.push_back(
          cfg.block_of[static_cast<std::uint32_t>(last.imm)]);
      if (last.op != Op::Jmp && blk.end < n) {
        blk.succs.push_back(cfg.block_of[blk.end]);
      }
    } else if (blk.end < n) {
      blk.succs.push_back(cfg.block_of[blk.end]);
    }
  }
  return cfg;
}

std::vector<std::uint64_t> live_out(const Program& prog, const Cfg& cfg) {
  const std::size_t n = prog.code.size();
  std::vector<std::uint64_t> out(n, 0);

  // Per-block use (read before any write) and def masks.
  const std::size_t nb = cfg.blocks.size();
  std::vector<std::uint64_t> use(nb, 0);
  std::vector<std::uint64_t> def(nb, 0);
  for (std::size_t b = 0; b < nb; ++b) {
    for (std::uint32_t i = cfg.blocks[b].begin; i < cfg.blocks[b].end; ++i) {
      const Operands o = operands_of(prog.code[i]);
      for (int r = 0; r < o.n_reads; ++r) {
        const std::uint64_t bit = 1ULL << o.reads[r].slot();
        if ((def[b] & bit) == 0) use[b] |= bit;
      }
      for (int w = 0; w < o.n_writes; ++w) {
        def[b] |= 1ULL << o.writes[w].slot();
      }
    }
  }

  // Iterate LiveIn(b) = use(b) | (LiveOut(b) & ~def(b)) to a fixpoint.
  std::vector<std::uint64_t> live_in(nb, 0);
  std::vector<std::uint64_t> live_out_blk(nb, 0);
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t b = nb; b-- > 0;) {
      std::uint64_t lo = 0;
      for (const std::uint32_t s : cfg.blocks[b].succs) lo |= live_in[s];
      const std::uint64_t li = use[b] | (lo & ~def[b]);
      if (lo != live_out_blk[b] || li != live_in[b]) {
        live_out_blk[b] = lo;
        live_in[b] = li;
        changed = true;
      }
    }
  }

  // Backward within each block for per-instruction live-out sets.
  for (std::size_t b = 0; b < nb; ++b) {
    std::uint64_t live = live_out_blk[b];
    for (std::uint32_t i = cfg.blocks[b].end; i-- > cfg.blocks[b].begin;) {
      out[i] = live;
      const Operands o = operands_of(prog.code[i]);
      for (int w = 0; w < o.n_writes; ++w) {
        live &= ~(1ULL << o.writes[w].slot());
      }
      for (int r = 0; r < o.n_reads; ++r) {
        live |= 1ULL << o.reads[r].slot();
      }
    }
  }
  return out;
}

}  // namespace pulpc::kir
