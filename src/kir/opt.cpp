#include "kir/opt.hpp"

#include <array>
#include <cstdint>
#include <map>
#include <tuple>
#include <vector>

#include "kir/cfg.hpp"
#include "kir/operands.hpp"

namespace pulpc::kir {

namespace {

/// Pure register computation: safe to collapse onto an available value
/// and safe to delete when the result is dead. Memory, control flow and
/// the runtime pseudo-ops are excluded; the integer/FP dividers ARE pure
/// (KIR division is total).
bool is_pure(const Instr& ins) {
  switch (ins.op_class()) {
    case OpClass::Alu:
    case OpClass::Div:
    case OpClass::Fp:
    case OpClass::FpDiv:
      return true;
    default:
      return ins.op == Op::CoreId || ins.op == Op::NumCores;
  }
}

bool is_commutative(Op op) {
  switch (op) {
    case Op::Add: case Op::Mul: case Op::And: case Op::Or: case Op::Xor:
    case Op::Min: case Op::Max: case Op::FAdd: case Op::FMul:
    case Op::FMin: case Op::FMax:
      return true;
    default:
      return false;
  }
}

/// One local-value-numbering + copy-propagation pass. Marks instructions
/// whose value is already present in their destination in `kill`, and
/// counts values collapsed onto existing registers.
std::size_t value_number(Program& prog, const Cfg& cfg,
                         std::vector<bool>& kill) {
  using Key = std::tuple<int, std::int32_t, std::uint32_t, std::uint32_t,
                         std::uint32_t>;
  std::size_t reused = 0;

  for (const BasicBlock& blk : cfg.blocks) {
    std::uint32_t next_vn = 1;
    std::array<std::uint32_t, 64> reg_vn{};  // 0 = unknown
    std::map<std::uint32_t, int> home;       // vn -> slot currently holding it
    std::map<Key, std::uint32_t> values;

    const auto vn_of = [&](int slot) {
      if (reg_vn[std::size_t(slot)] == 0) {
        reg_vn[std::size_t(slot)] = next_vn;
        home[next_vn] = slot;
        ++next_vn;
      }
      return reg_vn[std::size_t(slot)];
    };
    const auto fresh = [&](int slot) {
      reg_vn[std::size_t(slot)] = next_vn;
      home[next_vn] = slot;
      ++next_vn;
    };

    for (std::uint32_t i = blk.begin; i < blk.end; ++i) {
      Instr& ins = prog.code[i];
      Operands ops = operands_of(ins);
      const bool writes_rd =
          ops.n_writes > 0 && ops.writes[0].field == Field::Rd;

      // Copy propagation: retarget reads to the oldest register still
      // holding the same value (never the Rd field of an in-place op).
      for (int r = 0; r < ops.n_reads; ++r) {
        const RegRef ref = ops.reads[r];
        if (ref.field == Field::Rd && writes_rd) continue;
        const std::uint32_t vn = vn_of(ref.slot());
        const auto it = home.find(vn);
        if (it == home.end()) continue;
        const int h = it->second;
        if (h != ref.slot() && reg_vn[std::size_t(h)] == vn &&
            (h >= 32) == ref.fp) {
          set_field(ins, ref.field, std::uint8_t(h % 32));
        }
      }
      ops = operands_of(ins);  // refresh after rewriting

      if (!is_pure(ins) || ops.n_writes == 0) {
        for (int w = 0; w < ops.n_writes; ++w) fresh(ops.writes[w].slot());
        continue;
      }

      const int wslot = ops.writes[0].slot();

      // Copies are transparent: the destination aliases the source value.
      if (ins.op == Op::Mv || ins.op == Op::FMv) {
        const std::uint32_t vn = vn_of(ops.reads[0].slot());
        if (reg_vn[std::size_t(wslot)] == vn) {
          kill[i] = true;  // copying a value onto itself
          ++reused;
        }
        reg_vn[std::size_t(wslot)] = vn;
        continue;
      }

      std::uint32_t v1 = ops.n_reads > 0 ? vn_of(ops.reads[0].slot()) : 0;
      std::uint32_t v2 = ops.n_reads > 1 ? vn_of(ops.reads[1].slot()) : 0;
      const std::uint32_t v3 =
          ops.n_reads > 2 ? vn_of(ops.reads[2].slot()) : 0;
      if (is_commutative(ins.op) && v2 < v1) std::swap(v1, v2);
      const Key key{int(ins.op), ins.imm, v1, v2, v3};

      const auto it = values.find(key);
      if (it != values.end()) {
        const std::uint32_t vn = it->second;
        const auto hit = home.find(vn);
        if (hit != home.end() &&
            reg_vn[std::size_t(hit->second)] == vn &&
            (hit->second >= 32) == ops.writes[0].fp) {
          const int h = hit->second;
          if (h == wslot) {
            kill[i] = true;  // destination already holds this value
          } else {
            ins = Instr{ops.writes[0].fp ? Op::FMv : Op::Mv,
                        std::uint8_t(wslot % 32), std::uint8_t(h % 32), 0,
                        0, MemSpace::None};
          }
          reg_vn[std::size_t(wslot)] = vn;
          ++reused;
          continue;
        }
      }
      fresh(wslot);
      values[key] = reg_vn[std::size_t(wslot)];
    }
  }
  return reused;
}

/// Liveness-based dead-write elimination.
std::size_t eliminate_dead(const Program& prog, const Cfg& cfg,
                           std::vector<bool>& kill) {
  const std::vector<std::uint64_t> live = live_out(prog, cfg);
  std::size_t removed = 0;
  for (std::size_t i = 0; i < prog.code.size(); ++i) {
    if (kill[i]) continue;
    const Instr& ins = prog.code[i];
    if (!is_pure(ins)) continue;
    const Operands ops = operands_of(ins);
    if (ops.n_writes == 0) continue;
    bool dead = true;
    for (int w = 0; w < ops.n_writes; ++w) {
      if ((live[i] >> ops.writes[w].slot()) & 1ULL) dead = false;
    }
    if (dead) {
      kill[i] = true;
      ++removed;
    }
  }
  return removed;
}

/// Loop-invariant code motion using the front-end's trusted loop ranges.
/// The straightforward lowering recycles a small pool of temp registers,
/// so invariant values cannot simply be left in place: each hoisted
/// instruction is *renamed* into a register that is unused anywhere in
/// the program, its (block-local) uses are rewritten, and the
/// instruction moves to just before the loop header. Candidates must be
/// pure, read only registers never written inside the loop, sit in the
/// body's first basic block (executed every iteration), and have a
/// use-range fully contained in that block.
std::size_t hoist_invariants(Program& prog) {
  if (prog.loops.empty()) return 0;
  const Cfg cfg = build_cfg(prog);
  const std::size_t n = prog.code.size();

  // Registers unused in the entire program are the renaming pool.
  std::array<bool, 64> used{};
  for (const Instr& ins : prog.code) {
    const Operands o = operands_of(ins);
    for (int r = 0; r < o.n_reads; ++r) used[std::size_t(o.reads[r].slot())] = true;
    for (int w = 0; w < o.n_writes; ++w) used[std::size_t(o.writes[w].slot())] = true;
  }
  const auto take_free = [&](bool fp) -> int {
    for (int idx = 0; idx < 32; ++idx) {
      const int slot = idx + (fp ? 32 : 0);
      if (!used[std::size_t(slot)]) {
        used[std::size_t(slot)] = true;
        return slot;
      }
    }
    return -1;
  };

  std::vector<std::vector<Instr>> hoist_before(n);
  std::vector<bool> moved(n, false);
  std::size_t count = 0;

  for (const LoopMeta& loop : prog.loops) {
    bool innermost = true;
    for (const LoopMeta& other : prog.loops) {
      if (&other != &loop && loop.body_begin <= other.body_begin &&
          other.body_end <= loop.body_end) {
        innermost = false;
      }
    }
    if (!innermost) continue;
    const std::uint32_t header = loop.body_begin;
    if (header >= n || !is_branch(prog.code[header].op)) continue;

    // Writes per slot across the whole loop range.
    std::array<int, 64> defs{};
    for (std::uint32_t i = header; i < loop.body_end; ++i) {
      const Operands o = operands_of(prog.code[i]);
      for (int w = 0; w < o.n_writes; ++w) {
        ++defs[std::size_t(o.writes[w].slot())];
      }
    }

    const std::uint32_t first = header + 1;
    if (first >= loop.body_end) continue;
    const BasicBlock& blk = cfg.blocks[cfg.block_of[first]];
    const std::uint32_t stop = std::min(blk.end, loop.body_end);

    for (std::uint32_t i = first; i < stop; ++i) {
      Instr& ins = prog.code[i];
      if (moved[i] || !is_pure(ins)) continue;
      const Operands o = operands_of(ins);
      if (o.n_writes != 1) continue;
      // Reads of the destination (mac-style in-place ops) disqualify.
      bool self_read = false;
      bool invariant = true;
      for (int r = 0; r < o.n_reads; ++r) {
        if (o.reads[r].field == Field::Rd) self_read = true;
        if (defs[std::size_t(o.reads[r].slot())] != 0) invariant = false;
      }
      if (self_read || !invariant) continue;
      const int d = o.writes[0].slot();
      const bool fp = o.writes[0].fp;

      // Collect the uses of this definition: reads of d between i+1 and
      // the next write of d in the same block. If the block ends first,
      // the value could escape; skip.
      std::vector<std::pair<std::uint32_t, Field>> uses;
      bool redefined = false;
      for (std::uint32_t j = i + 1; j < stop && !redefined; ++j) {
        if (moved[j]) continue;
        const Operands oj = operands_of(prog.code[j]);
        bool writes_d = false;
        for (int w = 0; w < oj.n_writes; ++w) {
          if (oj.writes[w].slot() == d) writes_d = true;
        }
        for (int r = 0; r < oj.n_reads; ++r) {
          if (oj.reads[r].slot() != d) continue;
          // In-place destinations read before the overwrite.
          uses.emplace_back(j, oj.reads[r].field);
        }
        if (writes_d) redefined = true;
      }
      if (!redefined) continue;  // value may live past the block

      const int fresh_slot = take_free(fp);
      if (fresh_slot < 0) break;  // renaming pool exhausted

      // Rename, rewrite uses, and schedule the motion.
      ins.rd = std::uint8_t(fresh_slot % 32);
      for (const auto& [j, field] : uses) {
        set_field(prog.code[j], field, std::uint8_t(fresh_slot % 32));
      }
      hoist_before[header].push_back(ins);
      moved[i] = true;
      --defs[std::size_t(d)];
      ++count;
    }
  }
  if (count == 0) return 0;

  // Rebuild with the permutation and remap indices.
  std::vector<std::uint32_t> new_index(n + 1, 0);
  std::vector<Instr> code;
  code.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (const Instr& h : hoist_before[i]) code.push_back(h);
    new_index[i] = static_cast<std::uint32_t>(code.size());
    if (!moved[i]) {
      code.push_back(prog.code[i]);
    }
  }
  new_index[n] = static_cast<std::uint32_t>(code.size());
  for (Instr& ins : code) {
    if (is_branch(ins.op)) {
      ins.imm = std::int32_t(new_index[std::size_t(ins.imm)]);
    }
  }
  for (LoopMeta& l : prog.loops) {
    l.body_begin = new_index[l.body_begin];
    l.body_end = new_index[l.body_end];
  }
  for (ParallelRegionMeta& r : prog.regions) {
    r.begin = new_index[r.begin];
    r.end = new_index[r.end];
  }
  prog.entry = new_index[prog.entry];
  prog.code = std::move(code);
  return count;
}

/// Drop killed instructions and remap branch targets and metadata.
Program compact(const Program& prog, const std::vector<bool>& kill) {
  const std::size_t n = prog.code.size();
  std::vector<std::uint32_t> new_index(n + 1, 0);
  std::uint32_t next = 0;
  for (std::size_t i = 0; i < n; ++i) {
    new_index[i] = next;
    if (!kill[i]) ++next;
  }
  new_index[n] = next;
  // Targets of killed instructions land on the next surviving one.
  std::vector<std::uint32_t> target(n + 1, next);
  std::uint32_t ahead = next;
  for (std::size_t i = n; i-- > 0;) {
    if (!kill[i]) ahead = new_index[i];
    target[i] = ahead;
  }

  Program out;
  out.name = prog.name;
  out.buffers = prog.buffers;
  out.entry = target[prog.entry];
  out.code.reserve(next);
  for (std::size_t i = 0; i < n; ++i) {
    if (kill[i]) continue;
    Instr ins = prog.code[i];
    if (is_branch(ins.op)) {
      ins.imm = std::int32_t(target[std::size_t(ins.imm)]);
    }
    out.code.push_back(ins);
  }
  out.loops = prog.loops;
  for (LoopMeta& l : out.loops) {
    l.body_begin = target[l.body_begin];
    l.body_end = new_index[l.body_end];
  }
  out.regions = prog.regions;
  for (ParallelRegionMeta& r : out.regions) {
    r.begin = target[r.begin];
    r.end = new_index[r.end];
  }
  return out;
}

}  // namespace

Program optimize(const Program& prog, const OptOptions& options,
                 OptStats* stats) {
  Program current = prog;
  OptStats st;
  st.instrs_before = prog.code.size();
  for (int round = 0; round < options.max_rounds; ++round) {
    std::size_t hoisted = 0;
    if (options.licm) {
      hoisted = hoist_invariants(current);
      st.hoisted += hoisted;
    }
    const Cfg cfg = build_cfg(current);
    std::vector<bool> kill(current.code.size(), false);
    std::size_t reused = 0;
    std::size_t removed = 0;
    if (options.value_numbering) {
      reused = value_number(current, cfg, kill);
    }
    if (options.dead_code) {
      // DCE sees the post-LVN code (copies included).
      const Cfg cfg2 = build_cfg(current);
      removed = eliminate_dead(current, cfg2, kill);
    }
    st.values_reused += reused;
    st.dead_removed += removed;
    ++st.rounds;
    bool any = false;
    for (const bool k : kill) any |= k;
    if (any) current = compact(current, kill);
    if (!any && reused == 0 && hoisted == 0) break;
  }
  st.instrs_after = current.code.size();
  if (stats != nullptr) *stats = st;
  return current;
}

}  // namespace pulpc::kir
