// KIR optimiser: local value numbering with copy propagation, followed by
// liveness-based dead-code elimination and program compaction. Pure
// register computation that recomputes an available value (the address
// shifts the straightforward lowering emits per access, re-materialised
// constants, repeated subexpressions) collapses onto the existing
// register; writes nobody reads disappear.
//
// Deliberately NOT part of the default pipeline: the paper's dataset is
// built from the straightforward (-O0-style) lowering, and the
// ablation_compiler_opt bench quantifies how optimisation shifts the
// energy landscape and the static features.
#pragma once

#include <cstddef>

#include "kir/ir.hpp"

namespace pulpc::kir {

struct OptOptions {
  bool value_numbering = true;  ///< LVN + copy propagation per block
  bool dead_code = true;        ///< liveness-based dead write removal
  bool licm = true;             ///< hoist loop-invariant pure computation
  /// Maximum optimisation rounds (each round can expose more work).
  int max_rounds = 4;
};

struct OptStats {
  std::size_t instrs_before = 0;
  std::size_t instrs_after = 0;
  std::size_t values_reused = 0;   ///< instructions collapsed to copies
  std::size_t dead_removed = 0;    ///< dead writes eliminated
  std::size_t hoisted = 0;         ///< loop-invariant instructions moved
  int rounds = 0;
};

/// Optimise a program. The result passes kir::verify and computes the
/// same memory state as the input on every core count (validated by the
/// optimiser fuzz tests). Loop/region metadata and branch targets are
/// remapped across the compaction.
[[nodiscard]] Program optimize(const Program& prog,
                               const OptOptions& options = {},
                               OptStats* stats = nullptr);

}  // namespace pulpc::kir
