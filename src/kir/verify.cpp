// Implementation of the four standard verifier passes. The race and
// bounds passes share a symbolic memory model: every integer register is
// tracked as a linear form over "symbols" (loop induction variables with
// symbolic bound forms, the core id, uniform unknowns, interval-bounded
// opaque values). Buffer accesses become linear byte-offset forms that
// the bounds pass evaluates against extents (with relational
// substitution of loop bounds, so triangular loops like `for j < i`
// stay precise) and the race pass compares across per-core instances by
// solving a small bounded linear Diophantine feasibility problem.
#include "kir/verify.hpp"

#include <algorithm>
#include <array>
#include <cstdlib>
#include <map>
#include <numeric>
#include <sstream>
#include <utility>

#include "kir/operands.hpp"
#include "kir/symmodel.hpp"

namespace pulpc::kir {
namespace {

// Interval arithmetic (kInf, Ival, iadd/iscale/imul) and linear forms
// (SymExpr, form_*) live in kir/symmodel.hpp, shared with the cost model.

// ---------------------------------------------------------------------------
// Symbols.

struct Sym {
  enum class Kind : std::uint8_t { Cid, NumCores, LoopVar, Free, Rem };
  Kind kind = Kind::Free;
  /// Same value on every core at any given execution point.
  bool uniform = false;
  int loop = -1;  ///< LoopMeta index for LoopVar symbols
  bool parallel = false;
  long long step = 1;
  SymExpr lo, hi;  ///< LoopVar value range [lo, hi - 1] as symbolic forms
  Ival range;      ///< concrete value interval
  /// Attained ("witness") value range: values the symbol provably takes
  /// at runtime. Distinguishes proven defects from may-defects.
  bool wvalid = false;
  long long wlo = 0, whi = 0;
  /// Rem symbols: value = rem_src % rem_mod (rem_src a prior form).
  SymExpr rem_src;
  long long rem_mod = 0;
};

// ---------------------------------------------------------------------------
// The symbolic memory model: one linear walk over the program.

struct Access {
  std::uint32_t pc = 0;
  bool store = false;
  int buf = -1;          ///< Program::buffers index, -1 if unresolved
  SymExpr addr;          ///< byte offset from the buffer base
  int region = -1;       ///< Program::regions index containing pc
  int crit_depth = 0;    ///< nesting depth of critical sections at pc
};

class Model {
 public:
  Model(AnalysisContext& ctx, const VerifyOptions& opt)
      : prog_(ctx.prog()), opt_(opt), div_(ctx.divergence()) {
    build();
  }

  const Program& prog_;
  const VerifyOptions& opt_;
  const DivergenceInfo& div_;
  std::vector<Sym> syms;
  std::vector<Access> accesses;
  int cid_sym = -1;

  [[nodiscard]] const Sym& sym(int id) const { return syms[std::size_t(id)]; }

  /// Concrete interval of a form, substituting loop-variable symbols by
  /// their symbolic bounds innermost-first (this keeps correlated bounds
  /// like `for i < kk: use kk - i - 1` precise).
  [[nodiscard]] Ival eval(const SymExpr& f, int depth = 0) const {
    int pick = -1;
    long long coeff = 0;
    for (const auto& [s, c] : f.terms) {
      if (syms[std::size_t(s)].kind == Sym::Kind::LoopVar && s > pick) {
        pick = s;
        coeff = c;
      }
    }
    if (pick < 0 || depth > 16) {
      Ival r{f.c0, f.c0};
      for (const auto& [s, c] : f.terms) {
        r = iadd(r, iscale(syms[std::size_t(s)].range, c));
      }
      return r;
    }
    SymExpr base = f;
    base.terms.erase(std::find_if(
        base.terms.begin(), base.terms.end(),
        [&](const auto& t) { return t.first == pick; }));
    const Sym& s = syms[std::size_t(pick)];
    SymExpr top = s.hi;  // value range is [lo, hi - 1]
    top.c0 = sadd(top.c0, -1);
    const SymExpr at_min =
        form_add(base, form_scale(coeff > 0 ? s.lo : top, coeff));
    const SymExpr at_max =
        form_add(base, form_scale(coeff > 0 ? top : s.lo, coeff));
    const long long lo = eval(at_min, depth + 1).lo;
    const long long hi = eval(at_max, depth + 1).hi;
    return {std::min(lo, hi), std::max(lo, hi)};
  }

  /// Range of values `f` provably attains at runtime. Only forms over at
  /// most one witnessed symbol qualify (independence is not tracked).
  [[nodiscard]] bool witness(const SymExpr& f, Ival& out) const {
    if (f.terms.empty()) {
      out = {f.c0, f.c0};
      return true;
    }
    if (f.terms.size() != 1) return false;
    const auto [sid, c] = f.terms.front();
    const Sym& s = syms[std::size_t(sid)];
    long long wlo = 0, whi = 0;
    if (s.kind == Sym::Kind::Cid) {
      wlo = 0;
      whi = opt_.max_cores - 1;
    } else if (s.kind == Sym::Kind::LoopVar && s.wvalid) {
      wlo = s.wlo;
      whi = s.whi;
    } else {
      return false;
    }
    const long long a = sadd(smul(c, wlo), f.c0);
    const long long b = sadd(smul(c, whi), f.c0);
    out = {std::min(a, b), std::max(a, b)};
    return true;
  }

  [[nodiscard]] const char* buffer_name(int buf) const {
    return buf >= 0 ? prog_.buffers[std::size_t(buf)].name.c_str() : "?";
  }

 private:
  int fresh(Sym s) {
    syms.push_back(std::move(s));
    return static_cast<int>(syms.size()) - 1;
  }

  int fresh_free(Ival range, bool uniform) {
    return fresh(
        Sym{.kind = Sym::Kind::Free, .uniform = uniform, .range = range});
  }

  [[nodiscard]] bool is_uniform(const SymExpr& f) const {
    for (const auto& [s, c] : f.terms) {
      (void)c;
      if (!syms[std::size_t(s)].uniform) return false;
    }
    return true;
  }

  /// Opaque result of a non-linear operation: keep the interval, keep
  /// uniformity, lose the linear structure.
  SymExpr opaque(Ival range, bool uniform) {
    return form_sym(fresh_free(range, uniform));
  }

  [[nodiscard]] int find_buffer(std::int32_t imm) const {
    for (std::size_t b = 0; b < prog_.buffers.size(); ++b) {
      if (static_cast<std::int64_t>(prog_.buffers[b].base) == imm) {
        return static_cast<int>(b);
      }
    }
    return -1;
  }

  /// Interval of values a load from `buf` may observe: derived from the
  /// declared initialiser when nothing in the program stores to the
  /// buffer, unconstrained otherwise.
  [[nodiscard]] Ival content_range(int buf,
                                   const std::vector<bool>& stored) const {
    if (buf < 0 || stored[std::size_t(buf)]) return {};
    const BufferInfo& b = prog_.buffers[std::size_t(buf)];
    switch (b.init) {
      case BufInit::Zero: return {0, 0};
      case BufInit::Ramp: return {0, std::max<long long>(0, b.elems - 1)};
      case BufInit::RandomPos: return {1, kInf};
      case BufInit::Random: return {};
    }
    return {};
  }

  void build();
};

void Model::build() {
  const Program& p = prog_;
  // Which buffers are written anywhere (stores or DMA): their contents
  // are unknown, others keep their initialiser-derived range.
  std::vector<bool> stored(p.buffers.size(), false);
  bool has_dma = false;
  for (const Instr& ins : p.code) {
    if (ins.op == Op::Sw || ins.op == Op::Fsw) {
      const int b = find_buffer(ins.imm);
      if (b >= 0) stored[std::size_t(b)] = true;
    }
    if (ins.op == Op::DmaStart) has_dma = true;
  }
  if (has_dma) stored.assign(stored.size(), true);

  // Loop headers and enclosing region per instruction.
  std::map<std::uint32_t, int> loop_at_header;
  for (std::size_t l = 0; l < p.loops.size(); ++l) {
    loop_at_header[p.loops[l].body_begin] = static_cast<int>(l);
  }
  std::vector<int> region_of(p.code.size(), -1);
  for (std::size_t r = 0; r < p.regions.size(); ++r) {
    for (std::uint32_t i = p.regions[r].begin;
         i < p.regions[r].end && i < p.code.size(); ++i) {
      region_of[i] = static_cast<int>(r);
    }
  }

  std::array<SymExpr, kNumRegs> reg{};
  std::array<bool, kNumRegs> has{};
  std::uint32_t cur_pc = 0;
  const auto read_reg = [&](std::uint8_t r) -> SymExpr {
    if (!has[r]) {
      const bool uni =
          cur_pc < div_.div_in.size() && !((div_.div_in[cur_pc] >> r) & 1u);
      reg[r] = opaque({}, uni);
      has[r] = true;
    }
    return reg[r];
  };
  const auto write_reg = [&](std::uint8_t r, SymExpr f) {
    reg[r] = std::move(f);
    has[r] = true;
  };

  int crit = 0;
  for (std::uint32_t pc = 0; pc < p.code.size(); ++pc) {
    cur_pc = pc;
    // Entering a loop: registers mutated by the body no longer hold
    // their pre-loop values on iterations past the first; replace them
    // with opaque symbols (uniform when the divergence analysis proves
    // the value core-invariant). The induction variable itself becomes
    // a LoopVar symbol bounded by its current init form and the bound
    // register's current form.
    if (const auto it = loop_at_header.find(pc); it != loop_at_header.end()) {
      const LoopMeta& lm = p.loops[std::size_t(it->second)];
      const Instr& head = p.code[pc];
      const std::uint8_t var = head.rs1;
      const std::uint8_t bound = head.rs2;
      if (head.op == Op::Bge && lm.body_end >= pc + 3 &&
          lm.body_end <= p.code.size()) {
        std::vector<bool> written(kNumRegs, false);
        for (std::uint32_t i = pc; i < lm.body_end; ++i) {
          const Operands ops = operands_of(p.code[i]);
          for (int w = 0; w < ops.n_writes; ++w) {
            if (!ops.writes[w].fp) written[ops.writes[w].idx] = true;
          }
        }
        for (int r = 0; r < kNumRegs; ++r) {
          if (!written[std::size_t(r)] || r == var) continue;
          const bool uni = !((div_.div_in[pc] >> r) & 1u);
          write_reg(static_cast<std::uint8_t>(r), opaque({}, uni));
        }
        // Latch step: AddI var, var, step (serial/chunked) or
        // Add var, var, stride with stride = step * NumCores (cyclic).
        long long step = 1;
        const Instr& latch = p.code[lm.body_end - 2];
        if (latch.op == Op::AddI && latch.rd == var) {
          step = latch.imm;
        } else if (latch.op == Op::Add && latch.rd == var) {
          const SymExpr stride = read_reg(latch.rs2);
          if (stride.terms.size() == 1 && stride.c0 == 0 &&
              syms[std::size_t(stride.terms[0].first)].kind ==
                  Sym::Kind::NumCores) {
            step = stride.terms[0].second;
          }
        }
        Sym iv{.kind = Sym::Kind::LoopVar,
               .uniform = false,
               .loop = it->second,
               .parallel = lm.parallel,
               .step = step == 0 ? 1 : step,
               .lo = read_reg(var),
               .hi = read_reg(bound)};
        iv.uniform = is_uniform(iv.lo) && is_uniform(iv.hi) && !lm.parallel;
        const Ival lo_r = eval(iv.lo);
        iv.range = {lo_r.lo, sadd(eval(iv.hi).hi, -1)};
        if (iv.range.hi < iv.range.lo) iv.range.hi = iv.range.lo;
        if (lm.parallel) {
          // Lowering contract: across all cores the loop collectively
          // executes exactly `trip` iterations lo, lo+step, ... where lo
          // is the minimum of the per-core start (chunked: lo +
          // cid*chunk with min 0 offset; cyclic: lo + cid*step). The
          // per-instance start is symbolic, but the collective coverage
          // witness only needs that minimum to be finite.
          if (lm.trip >= 1 && lo_r.lo > -kInf) {
            iv.wvalid = true;
            iv.wlo = lo_r.lo;
            iv.whi = sadd(iv.wlo, smul(lm.trip - 1, iv.step));
          }
        } else if (iv.lo.is_const() && iv.hi.is_const() &&
                   iv.hi.c0 - 1 >= iv.lo.c0) {
          iv.wvalid = true;
          iv.wlo = iv.lo.c0;
          iv.whi = iv.hi.c0 - 1;
        }
        write_reg(var, form_sym(fresh(std::move(iv))));
      }
    }

    const Instr& ins = p.code[pc];
    const auto uni2 = [&](std::uint8_t a, std::uint8_t b) {
      return is_uniform(read_reg(a)) && is_uniform(read_reg(b));
    };
    switch (ins.op) {
      case Op::Li: write_reg(ins.rd, form_const(ins.imm)); break;
      case Op::Mv: write_reg(ins.rd, read_reg(ins.rs1)); break;
      case Op::Add:
        write_reg(ins.rd, form_add(read_reg(ins.rs1), read_reg(ins.rs2)));
        break;
      case Op::Sub:
        write_reg(ins.rd, form_sub(read_reg(ins.rs1), read_reg(ins.rs2)));
        break;
      case Op::AddI:
        write_reg(ins.rd, form_add(read_reg(ins.rs1), form_const(ins.imm)));
        break;
      case Op::MulI:
        write_reg(ins.rd, form_scale(read_reg(ins.rs1), ins.imm));
        break;
      case Op::Mul: {
        const SymExpr a = read_reg(ins.rs1), b = read_reg(ins.rs2);
        if (a.is_const()) {
          write_reg(ins.rd, form_scale(b, a.c0));
        } else if (b.is_const()) {
          write_reg(ins.rd, form_scale(a, b.c0));
        } else {
          write_reg(ins.rd, opaque(imul(eval(a), eval(b)),
                                   is_uniform(a) && is_uniform(b)));
        }
        break;
      }
      case Op::Mac: {
        const SymExpr a = read_reg(ins.rs1), b = read_reg(ins.rs2);
        SymExpr prod;
        if (a.is_const()) {
          prod = form_scale(b, a.c0);
        } else if (b.is_const()) {
          prod = form_scale(a, b.c0);
        } else {
          prod = opaque(imul(eval(a), eval(b)),
                        is_uniform(a) && is_uniform(b));
        }
        write_reg(ins.rd, form_add(read_reg(ins.rd), prod));
        break;
      }
      case Op::ShlI: {
        if (ins.imm >= 0 && ins.imm < 62) {
          write_reg(ins.rd, form_scale(read_reg(ins.rs1), 1ll << ins.imm));
        } else {
          write_reg(ins.rd, opaque({}, is_uniform(read_reg(ins.rs1))));
        }
        break;
      }
      case Op::ShrI: {
        const SymExpr a = read_reg(ins.rs1);
        const Ival r = eval(a);
        Ival out{};
        if (r.lo >= 0 && ins.imm >= 0 && ins.imm < 62) {
          out = {r.lo >> ins.imm, r.hi >= kInf ? kInf : r.hi >> ins.imm};
        }
        write_reg(ins.rd, opaque(out, is_uniform(a)));
        break;
      }
      case Op::Shl: {
        const SymExpr a = read_reg(ins.rs1), b = read_reg(ins.rs2);
        if (b.is_const() && b.c0 >= 0 && b.c0 < 62) {
          write_reg(ins.rd, form_scale(a, 1ll << b.c0));
        } else {
          const Ival ra = eval(a), rb = eval(b);
          Ival out{};
          if (ra.lo >= 0 && rb.lo >= 0 && rb.hi < 62) {
            out = {smul(ra.lo, 1ll << rb.lo), smul(ra.hi, 1ll << rb.hi)};
          }
          write_reg(ins.rd, opaque(out, is_uniform(a) && is_uniform(b)));
        }
        break;
      }
      case Op::Shr: {
        const SymExpr a = read_reg(ins.rs1), b = read_reg(ins.rs2);
        const Ival ra = eval(a), rb = eval(b);
        Ival out{};
        if (ra.lo >= 0 && rb.lo >= 0) {
          out = {ra.hi >= kInf ? 0 : ra.lo >> std::min<long long>(rb.hi, 62),
                 ra.hi >= kInf ? kInf
                               : ra.hi >> std::min<long long>(rb.lo, 62)};
        }
        write_reg(ins.rd, opaque(out, uni2(ins.rs1, ins.rs2)));
        break;
      }
      case Op::AndI: {
        const Ival ra = eval(read_reg(ins.rs1));
        Ival out{};
        if (ins.imm >= 0) {
          out = {0,
                 ra.lo >= 0 ? std::min<long long>(ra.hi, ins.imm) : ins.imm};
        }
        write_reg(ins.rd, opaque(out, is_uniform(read_reg(ins.rs1))));
        break;
      }
      case Op::And: {
        const Ival ra = eval(read_reg(ins.rs1));
        const Ival rb = eval(read_reg(ins.rs2));
        Ival out{};
        if (ra.lo >= 0 && rb.lo >= 0) {
          out = {0, std::min(ra.hi, rb.hi)};
        } else if (ra.lo >= 0) {
          out = {0, ra.hi};
        } else if (rb.lo >= 0) {
          out = {0, rb.hi};
        }
        write_reg(ins.rd, opaque(out, uni2(ins.rs1, ins.rs2)));
        break;
      }
      case Op::Or: case Op::Xor: {
        const Ival ra = eval(read_reg(ins.rs1));
        const Ival rb = eval(read_reg(ins.rs2));
        Ival out{};
        if (ra.lo >= 0 && rb.lo >= 0) out = {0, sadd(ra.hi, rb.hi)};
        write_reg(ins.rd, opaque(out, uni2(ins.rs1, ins.rs2)));
        break;
      }
      case Op::OrI: case Op::XorI: {
        const Ival ra = eval(read_reg(ins.rs1));
        Ival out{};
        if (ra.lo >= 0 && ins.imm >= 0) out = {0, sadd(ra.hi, ins.imm)};
        write_reg(ins.rd, opaque(out, is_uniform(read_reg(ins.rs1))));
        break;
      }
      case Op::Slt: case Op::SltI: case Op::FLt: case Op::FLe: case Op::FEq:
        write_reg(ins.rd, opaque({0, 1}, false));
        break;
      case Op::Min: {
        const Ival ra = eval(read_reg(ins.rs1));
        const Ival rb = eval(read_reg(ins.rs2));
        write_reg(ins.rd,
                  opaque({std::min(ra.lo, rb.lo), std::min(ra.hi, rb.hi)},
                         uni2(ins.rs1, ins.rs2)));
        break;
      }
      case Op::Max: {
        const Ival ra = eval(read_reg(ins.rs1));
        const Ival rb = eval(read_reg(ins.rs2));
        write_reg(ins.rd,
                  opaque({std::max(ra.lo, rb.lo), std::max(ra.hi, rb.hi)},
                         uni2(ins.rs1, ins.rs2)));
        break;
      }
      case Op::Abs: {
        const Ival ra = eval(read_reg(ins.rs1));
        const long long m =
            std::max(ra.hi < 0 ? -ra.hi : ra.hi, ra.lo < 0 ? -ra.lo : 0ll);
        write_reg(ins.rd, opaque({0, m}, is_uniform(read_reg(ins.rs1))));
        break;
      }
      case Op::Div: {
        const SymExpr a = read_reg(ins.rs1), b = read_reg(ins.rs2);
        const Ival ra = eval(a), rb = eval(b);
        Ival out{};
        if (rb.lo >= 1) {
          const long long c[4] = {ra.lo / rb.lo, ra.lo / rb.hi,
                                  ra.hi / rb.lo, ra.hi / rb.hi};
          out = {*std::min_element(c, c + 4), *std::max_element(c, c + 4)};
        }
        write_reg(ins.rd, opaque(out, is_uniform(a) && is_uniform(b)));
        break;
      }
      case Op::Rem: {
        const SymExpr a = read_reg(ins.rs1), b = read_reg(ins.rs2);
        const Ival ra = eval(a), rb = eval(b);
        if (b.is_const() && b.c0 >= 1 && ra.lo >= 0) {
          Sym rem{.kind = Sym::Kind::Rem,
                  .uniform = is_uniform(a),
                  .range = {0, std::min(ra.hi, b.c0 - 1)},
                  .rem_src = a,
                  .rem_mod = b.c0};
          write_reg(ins.rd, form_sym(fresh(std::move(rem))));
        } else if (rb.lo >= 1 && ra.lo >= 0) {
          write_reg(ins.rd, opaque({0, sadd(rb.hi, -1)},
                                   is_uniform(a) && is_uniform(b)));
        } else {
          write_reg(ins.rd, opaque({}, is_uniform(a) && is_uniform(b)));
        }
        break;
      }
      case Op::CoreId: {
        if (cid_sym < 0) {
          cid_sym = fresh(Sym{.kind = Sym::Kind::Cid,
                              .uniform = false,
                              .range = {0, opt_.max_cores - 1}});
        }
        write_reg(ins.rd, form_sym(cid_sym));
        break;
      }
      case Op::NumCores:
        write_reg(ins.rd, form_sym(fresh(Sym{.kind = Sym::Kind::NumCores,
                                             .uniform = true,
                                             .range = {1, opt_.max_cores}})));
        break;
      case Op::CvtWS:
        write_reg(ins.rd, opaque({}, false));
        break;
      case Op::Lw: case Op::Flw: case Op::Sw: case Op::Fsw: {
        const int buf = find_buffer(ins.imm);
        Access a{.pc = pc,
                 .store = ins.op == Op::Sw || ins.op == Op::Fsw,
                 .buf = buf,
                 .addr = read_reg(ins.rs1),
                 .region = region_of[pc],
                 .crit_depth = crit};
        // `imm` carries the buffer base, so for resolved buffers `addr`
        // is already base-relative.
        if (buf < 0) a.addr = form_add(a.addr, form_const(ins.imm));
        accesses.push_back(std::move(a));
        if (ins.op == Op::Lw) {
          write_reg(ins.rd, opaque(content_range(buf, stored), false));
        }
        break;
      }
      case Op::CritEnter: ++crit; break;
      case Op::CritExit: crit = std::max(0, crit - 1); break;
      default:
        // Float ops, branches, sync: no integer register effects
        // tracked by this model.
        break;
    }
  }
}

std::string offset_str(const Ival& r) {
  std::ostringstream os;
  os << "[";
  if (r.lo <= -kInf) os << "-inf"; else os << r.lo;
  os << ", ";
  if (r.hi >= kInf) os << "+inf"; else os << r.hi;
  os << "]";
  return os.str();
}

// ---------------------------------------------------------------------------
// Pass 1: barrier matching / barrier divergence.

class BarrierPass final : public Pass {
 public:
  explicit BarrierPass(VerifyOptions opt) : opt_(opt) {}
  [[nodiscard]] const char* name() const noexcept override {
    return "barrier";
  }

  void run(AnalysisContext& ctx, std::vector<Diagnostic>& out) override {
    const Program& p = ctx.prog();
    int emitted = 0;
    const auto diag = [&](Severity sev, std::uint32_t pc, std::string msg) {
      if (emitted++ >= opt_.max_diags_per_pass) return;
      out.push_back({sev, name(), instr_location(p, pc),
                     static_cast<std::int32_t>(pc), std::move(msg)});
    };
    // Structural: every parallel region must be closed by its implicit
    // barrier (the lowering contract the race analysis relies on).
    for (const ParallelRegionMeta& r : p.regions) {
      if (r.end == 0 || r.end > p.code.size() ||
          p.code[r.end - 1].op != Op::Barrier) {
        diag(Severity::Error, r.end > 0 ? r.end - 1 : 0,
             "parallel region [" + std::to_string(r.begin) + ", " +
                 std::to_string(r.end) +
                 ") is not closed by a barrier; chunks of the next "
                 "statement may observe unfinished writes");
      }
    }
    // Semantic: a barrier reached under divergent control deadlocks the
    // cluster (some cores wait at the barrier, others never arrive).
    const Cfg& g = ctx.cfg();
    const DivergenceInfo& div = ctx.divergence();
    for (std::uint32_t pc = 0; pc < p.code.size(); ++pc) {
      if (p.code[pc].op != Op::Barrier) continue;
      const std::uint32_t b = g.block_of[pc];
      if (div.divergent_block[b]) {
        diag(Severity::Error, pc,
             "barrier executes under divergent control (a master-guarded "
             "or core-dependent branch reaches it); cores that skip the "
             "barrier deadlock the cluster");
      }
    }
  }

 private:
  VerifyOptions opt_;
};

// ---------------------------------------------------------------------------
// Pass 2: cross-core data races inside parallel regions.

class RacePass final : public Pass {
 public:
  explicit RacePass(VerifyOptions opt) : opt_(opt) {}
  [[nodiscard]] const char* name() const noexcept override { return "race"; }

  void run(AnalysisContext& ctx, std::vector<Diagnostic>& out) override {
    const Model m(ctx, opt_);
    const Program& p = ctx.prog();
    int emitted = 0;
    const auto diag = [&](Severity sev, const Access& a, const Access& b,
                          const std::string& what) {
      if (emitted++ >= opt_.max_diags_per_pass) return;
      std::ostringstream os;
      os << (a.store && b.store ? "write-write" : "read-write") << " " << what
         << " on buffer '" << m.buffer_name(a.buf)
         << "': " << (a.store ? "store" : "load") << " at instr " << a.pc;
      if (b.pc != a.pc) {
        os << " vs " << (b.store ? "store" : "load") << " at instr " << b.pc;
      } else {
        os << " (same instruction, different cores)";
      }
      out.push_back({sev, name(), instr_location(p, a.pc),
                     static_cast<std::int32_t>(a.pc), os.str()});
    };

    for (std::size_t r = 0; r < p.regions.size(); ++r) {
      // A region with a statically known total of 0 or 1 iterations
      // cannot race with itself across cores.
      if (p.regions[r].total_iters >= 0 && p.regions[r].total_iters <= 1) {
        continue;
      }
      std::vector<const Access*> acc;
      for (const Access& a : m.accesses) {
        if (a.region == static_cast<int>(r) && a.buf >= 0) acc.push_back(&a);
      }
      for (std::size_t i = 0; i < acc.size(); ++i) {
        for (std::size_t j = i; j < acc.size(); ++j) {
          const Access& a = *acc[i];
          const Access& b = *acc[j];
          if (!a.store && !b.store) continue;
          if (a.buf != b.buf) continue;
          if (a.crit_depth > 0 && b.crit_depth > 0) continue;
          check_pair(m, static_cast<int>(r), a.store ? a : b,
                     a.store ? b : a, diag);
        }
      }
    }
  }

 private:
  template <typename DiagFn>
  void check_pair(const Model& m, int region, const Access& a,
                  const Access& b, DiagFn& diag) {
    // Identical single-symbol remainder forms: x[(c*iv + k) % mod].
    // Two iterations collide iff mod/gcd(c, mod) divides their distance;
    // when that period exceeds the iteration span the accesses are
    // pairwise disjoint.
    if (a.addr.terms.size() == 1 && a.addr.terms == b.addr.terms &&
        a.addr.c0 == b.addr.c0) {
      const int sid = a.addr.terms.front().first;
      const Sym& s = m.sym(sid);
      if (s.kind == Sym::Kind::Rem && s.rem_mod > 1) {
        if (s.rem_src.terms.size() == 1) {
          const auto [iv_id, iv_c] = s.rem_src.terms.front();
          const Sym& iv = m.sym(iv_id);
          if (iv.kind == Sym::Kind::LoopVar && iv.parallel) {
            const long long g = std::gcd(std::abs(iv_c), s.rem_mod);
            const long long period = s.rem_mod / g;
            const long long width = sat(iv.range.hi) - sat(iv.range.lo);
            if (period > width) return;  // disjoint: safe
          }
        }
        diag(Severity::Note, a, b,
             "possible overlap (modular index not provably injective)");
        return;
      }
    }

    // Build the collision equation expand(B, core1) - expand(A, core0) = 0
    // over bounded integer variables.
    std::map<std::pair<int, int>, long long> terms;
    long long c0 = 0;
    bool precise = true;
    const int iv_sym = region_iv(m, region);
    expand(m, region, iv_sym, b.addr, 1, 1, terms, c0, precise, 0);
    expand(m, region, iv_sym, a.addr, 0, -1, terms, c0, precise, 0);
    for (auto it = terms.begin(); it != terms.end();) {
      it = it->second == 0 ? terms.erase(it) : std::next(it);
    }

    // Try to merge the two instances of a must-be-distinct symbol (the
    // parallel induction variable, or the core id) into one nonzero
    // difference variable d.
    long long cd = 0, d_step = 1, d_width = 0;
    bool d_witnessed = false;
    for (const int cand : {iv_sym, m.cid_sym}) {
      if (cand < 0) continue;
      const auto ia = terms.find({cand, 0});
      const auto ib = terms.find({cand, 1});
      if (ia == terms.end() || ib == terms.end()) continue;
      if (ia->second != -ib->second) continue;
      const Sym& s = m.sym(cand);
      cd = ib->second;
      d_step = s.kind == Sym::Kind::Cid ? 1 : std::abs(s.step);
      if (d_step == 0) d_step = 1;
      if (s.kind == Sym::Kind::Cid) {
        d_width = opt_.max_cores - 1;
        d_witnessed = true;
      } else if (s.wvalid) {
        d_width = s.whi - s.wlo;
        d_witnessed = true;
      } else {
        d_width = sat(s.range.hi) - sat(s.range.lo);
      }
      terms.erase(ia);
      terms.erase(ib);
      break;
    }

    // Remaining variables with boxes.
    std::vector<std::pair<long long, Ival>> vars;
    bool distinct_core_possible = cd != 0;
    for (const auto& [key, c] : terms) {
      const Sym& s = m.sym(key.first);
      Ival box = s.range;
      if (key.second >= 0 && s.kind == Sym::Kind::LoopVar &&
          key.first != iv_sym) {
        // Relational offset variable: v = lo + y, y in [0, width - 1].
        const long long w = sat(m.eval(form_sub(s.hi, s.lo)).hi);
        box = {0, std::max<long long>(0, w - 1)};
      }
      if (key.first == iv_sym || s.kind == Sym::Kind::Cid) {
        distinct_core_possible = true;
      }
      vars.push_back({c, box});
    }

    Ival sum{c0, c0};
    long long g = 0;
    for (const auto& [c, box] : vars) {
      sum = iadd(sum, iscale(box, c));
      g = std::gcd(g, std::abs(c));
    }

    if (cd == 0) {
      // No distinct-instance variable: either the index is uniform
      // across cores (all cores touch the same element -> proven race)
      // or precision was lost.
      if (!distinct_core_possible && vars.empty() && precise) {
        if (c0 == 0) {
          diag(Severity::Error, a, b,
               "race: every core accesses the same element (no per-core "
               "partitioning in the index and no critical section)");
        }
        return;  // constant nonzero distance: disjoint
      }
      if (sum.lo > 0 || sum.hi < 0) return;  // safe
      if (g != 0 && c0 % g != 0) return;     // gcd lattice: safe
      diag(Severity::Note, a, b,
           "possible overlap (unable to prove per-core footprints "
           "disjoint; index distance range " +
               offset_str(sum) + ")");
      return;
    }

    // d-iteration: for each candidate distance d of the distinct
    // variable, the rest must cover -cd*d. Necessary conditions: the
    // target lies in the reachable interval and matches the gcd lattice.
    const long long reach =
        std::max(std::abs(sat(sum.lo)), std::abs(sat(sum.hi)));
    const long long d_cap = std::min(d_width, reach / std::abs(cd) + 1);
    bool any_feasible = false;
    bool capped = false;
    long long feasible_d = 0;
    long long iters = 0;
    for (long long d = d_step; d <= d_cap && !any_feasible; d += d_step) {
      if (++iters > (1 << 16)) {
        capped = true;
        break;
      }
      for (const long long sd : {d, -d}) {
        // Achievable sums form the lattice c0 + g*Z clipped to `sum`
        // (exactly {c0} when no variables remain).
        const long long target = -smul(cd, sd);
        if (target < sum.lo || target > sum.hi) continue;
        if (g == 0) {
          if (target != c0) continue;
        } else if (((target - c0) % g) != 0) {
          continue;
        }
        any_feasible = true;
        feasible_d = sd;
        break;
      }
    }
    if (!any_feasible) {
      if (!capped) return;  // every distance proven disjoint: safe
      diag(Severity::Note, a, b,
           "possible overlap (iteration-distance search capped)");
      return;
    }

    // A witnessed collision is a proven race only if the two iterations
    // can land on *different* cores under some core count in
    // [2, max_cores]. Chunked scheduling splits any distance d >= 1
    // across a chunk boundary for some pair; cyclic puts d apart on the
    // same core exactly when every admissible core count divides d, i.e.
    // when lcm(2..max_cores) does.
    long long same_core_lcm = 1;
    for (long long c = 2; c <= opt_.max_cores; ++c) {
      same_core_lcm = std::lcm(same_core_lcm, c);
    }
    const bool cross_core = std::abs(feasible_d) % same_core_lcm != 0;
    if (vars.empty() && precise && d_witnessed && cross_core &&
        opt_.max_cores >= 2) {
      std::ostringstream os;
      os << "race: chunks overlap (iterations " << std::abs(feasible_d)
         << " apart touch the same address)";
      diag(Severity::Error, a, b, os.str());
      return;
    }
    diag(Severity::Note, a, b,
         "possible overlap (unable to prove per-core footprints disjoint)");
  }

  /// Symbol id of the region's parallel induction variable, -1 if the
  /// model never bound one.
  static int region_iv(const Model& m, int region) {
    for (std::size_t s = 0; s < m.syms.size(); ++s) {
      const Sym& sym = m.syms[s];
      if (sym.kind != Sym::Kind::LoopVar || !sym.parallel) continue;
      const LoopMeta& lm = m.prog_.loops[std::size_t(sym.loop)];
      const ParallelRegionMeta& r = m.prog_.regions[std::size_t(region)];
      if (lm.body_begin >= r.begin && lm.body_end <= r.end) {
        return static_cast<int>(s);
      }
    }
    return -1;
  }

  /// Flatten a form into per-instance / shared equation variables. Loop
  /// variables of loops inside the region are per-instance; the region
  /// IV stays a direct variable, other in-region loop variables are
  /// rewritten relationally as lo + offset so bounds referencing outer
  /// symbols stay linked. Uniform symbols are shared between the two
  /// instances (their coefficients cancel for identical index forms).
  void expand(const Model& m, int region, int iv_sym, const SymExpr& f,
              int inst, long long mult,
              std::map<std::pair<int, int>, long long>& terms, long long& c0,
              bool& precise, int depth) {
    c0 = sadd(c0, smul(f.c0, mult));
    if (depth > 8) {
      precise = false;
      return;
    }
    const ParallelRegionMeta& r = m.prog_.regions[std::size_t(region)];
    for (const auto& [sid, c] : f.terms) {
      const long long cc = smul(c, mult);
      const Sym& s = m.sym(sid);
      const bool in_region =
          s.kind == Sym::Kind::LoopVar &&
          m.prog_.loops[std::size_t(s.loop)].body_begin >= r.begin &&
          m.prog_.loops[std::size_t(s.loop)].body_end <= r.end;
      if (in_region && sid != iv_sym) {
        expand(m, region, iv_sym, s.lo, inst, cc, terms, c0, precise,
               depth + 1);
        terms[{sid, inst}] = sadd(terms[{sid, inst}], cc);
      } else if (sid == iv_sym || s.kind == Sym::Kind::Cid || !s.uniform) {
        // Per-instance: different cores may observe different values.
        terms[{sid, inst}] = sadd(terms[{sid, inst}], cc);
        if (sid != iv_sym && s.kind != Sym::Kind::Cid) precise = false;
      } else {
        // Uniform symbol: both instances observe the same value at a
        // given region execution.
        terms[{sid, -1}] = sadd(terms[{sid, -1}], cc);
      }
    }
  }

  VerifyOptions opt_;
};

// ---------------------------------------------------------------------------
// Pass 3: out-of-bounds buffer accesses.

class BoundsPass final : public Pass {
 public:
  explicit BoundsPass(VerifyOptions opt) : opt_(opt) {}
  [[nodiscard]] const char* name() const noexcept override {
    return "bounds";
  }

  void run(AnalysisContext& ctx, std::vector<Diagnostic>& out) override {
    const Model m(ctx, opt_);
    const Program& p = ctx.prog();
    int emitted = 0;
    for (const Access& a : m.accesses) {
      if (a.buf < 0) continue;  // unresolved base: hand-written KIR
      const BufferInfo& buf = p.buffers[std::size_t(a.buf)];
      const long long limit = static_cast<long long>(buf.bytes()) - 4;
      const Ival r = m.eval(a.addr);
      if (r.lo >= 0 && r.hi <= limit) continue;
      if (emitted >= opt_.max_diags_per_pass) break;
      std::ostringstream os;
      Severity sev = Severity::Note;
      if (r.hi < 0 || r.lo > limit) {
        sev = Severity::Error;
        os << "access always out of bounds: byte offset " << offset_str(r)
           << " vs buffer '" << buf.name << "' (" << buf.bytes() << " bytes)";
      } else {
        Ival w{};
        if (m.witness(a.addr, w) && (w.lo < 0 || w.hi > limit)) {
          sev = Severity::Error;
          os << "out-of-bounds access: byte offset reaches "
             << (w.hi > limit ? w.hi : w.lo) << " on buffer '" << buf.name
             << "' (" << buf.bytes() << " bytes)";
        } else {
          os << "may access out of bounds: byte offset range "
             << offset_str(r) << " vs buffer '" << buf.name << "' ("
             << buf.bytes() << " bytes); analysis imprecise";
        }
      }
      ++emitted;
      out.push_back({sev, name(), instr_location(p, a.pc),
                     static_cast<std::int32_t>(a.pc), os.str()});
    }
  }

 private:
  VerifyOptions opt_;
};

// ---------------------------------------------------------------------------
// Pass 4: use-before-def and dead stores on registers.

class RegUsePass final : public Pass {
 public:
  explicit RegUsePass(VerifyOptions opt) : opt_(opt) {}
  [[nodiscard]] const char* name() const noexcept override {
    return "reguse";
  }

  void run(AnalysisContext& ctx, std::vector<Diagnostic>& out) override {
    const Program& p = ctx.prog();
    const Cfg& g = ctx.cfg();
    const std::size_t nb = g.blocks.size();
    int emitted = 0;
    const auto diag = [&](Severity sev, std::uint32_t pc, std::string msg) {
      if (emitted++ >= opt_.max_diags_per_pass) return;
      out.push_back({sev, name(), instr_location(p, pc),
                     static_cast<std::int32_t>(pc), std::move(msg)});
    };

    // Initialised-slot dataflow, two lattices over the same transfer
    // function: "must" (intersection at joins) and "may" (union). A read
    // outside must-init is a use-before-def; whether any definition can
    // reach it at all decides the severity — the simulator zero-fills
    // registers, so a loop-carried first-iteration read of the implicit
    // zero (a pattern the optimiser's accumulator rotation produces) is
    // defined behaviour and only warned about, while a register no path
    // ever writes is a hard defect.
    std::vector<std::vector<std::uint32_t>> preds(nb);
    for (std::size_t b = 0; b < nb; ++b) {
      for (const auto s : g.blocks[b].succs) {
        preds[s].push_back(static_cast<std::uint32_t>(b));
      }
    }
    const std::uint32_t entry =
        p.entry < g.block_of.size() ? g.block_of[p.entry] : 0;
    std::vector<std::uint64_t> must_in(nb, ~0ull), must_out(nb, ~0ull);
    std::vector<std::uint64_t> may_in(nb, 0), may_out(nb, 0);
    std::vector<std::uint64_t> gen(nb, 0);
    for (std::size_t b = 0; b < nb; ++b) {
      for (std::uint32_t pc = g.blocks[b].begin; pc < g.blocks[b].end; ++pc) {
        const Operands ops = operands_of(p.code[pc]);
        for (int w = 0; w < ops.n_writes; ++w) {
          gen[b] |= 1ull << ops.writes[w].slot();
        }
      }
    }
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t b = 0; b < nb; ++b) {
        std::uint64_t must = ~0ull, may = 0;
        if (b == entry) {
          must = 0;
        } else {
          for (const auto pr : preds[b]) {
            must &= must_out[pr];
            may |= may_out[pr];
          }
        }
        const std::uint64_t mo = must | gen[b];
        const std::uint64_t yo = may | gen[b];
        if (must != must_in[b] || mo != must_out[b] || may != may_in[b] ||
            yo != may_out[b]) {
          must_in[b] = must;
          must_out[b] = mo;
          may_in[b] = may;
          may_out[b] = yo;
          changed = true;
        }
      }
    }
    for (std::size_t b = 0; b < nb; ++b) {
      std::uint64_t m = must_in[b];
      std::uint64_t y = may_in[b];
      for (std::uint32_t pc = g.blocks[b].begin; pc < g.blocks[b].end; ++pc) {
        const Operands ops = operands_of(p.code[pc]);
        for (int rd = 0; rd < ops.n_reads; ++rd) {
          const RegRef r = ops.reads[rd];
          if (!((m >> r.slot()) & 1u)) {
            const std::string reg_name =
                std::string(r.fp ? "f" : "r") + std::to_string(r.idx);
            if ((y >> r.slot()) & 1u) {
              diag(Severity::Warning, pc,
                   "register " + reg_name +
                       " may be read before initialisation (some path "
                       "reaches this read without a definition; the "
                       "implicit zero is observed)");
            } else {
              diag(Severity::Error, pc,
                   "use of register " + reg_name +
                       " that no path ever defines");
            }
            m |= 1ull << r.slot();  // report each slot once per block
            y |= 1ull << r.slot();
          }
        }
        for (int w = 0; w < ops.n_writes; ++w) {
          m |= 1ull << ops.writes[w].slot();
          y |= 1ull << ops.writes[w].slot();
        }
      }
    }

    // Dead stores: register results never read. The runtime prologue
    // (zero / core-id / core-count setup before MarkEnter) is exempt —
    // it is part of the calling convention, not the kernel. Plain
    // register-to-register moves are also exempt: the DSL materialises
    // every named variable with a final mv/fmv, and an unread variable
    // holding an already-consumed value is lowering idiom, not lost
    // computation.
    if (!opt_.dead_stores) return;
    const std::uint32_t kbegin = ctx.kernel_begin();
    const std::vector<std::uint64_t> live = live_out(p, g);
    for (std::uint32_t pc = kbegin; pc < p.code.size(); ++pc) {
      if (p.code[pc].op == Op::Mv || p.code[pc].op == Op::FMv) continue;
      const Operands ops = operands_of(p.code[pc]);
      if (ops.n_writes != 1) continue;
      const int slot = ops.writes[0].slot();
      if ((live[pc] >> slot) & 1u) continue;
      diag(Severity::Warning, pc,
           std::string("dead store: ") + (ops.writes[0].fp ? "f" : "r") +
               std::to_string(ops.writes[0].idx) +
               " is written but never read afterwards");
    }
  }

 private:
  VerifyOptions opt_;
};

}  // namespace

std::unique_ptr<Pass> make_barrier_pass(const VerifyOptions& opt) {
  return std::make_unique<BarrierPass>(opt);
}
std::unique_ptr<Pass> make_race_pass(const VerifyOptions& opt) {
  return std::make_unique<RacePass>(opt);
}
std::unique_ptr<Pass> make_bounds_pass(const VerifyOptions& opt) {
  return std::make_unique<BoundsPass>(opt);
}
std::unique_ptr<Pass> make_reguse_pass(const VerifyOptions& opt) {
  return std::make_unique<RegUsePass>(opt);
}

void add_standard_passes(PassManager& pm, const VerifyOptions& opt) {
  pm.add(make_barrier_pass(opt));
  pm.add(make_race_pass(opt));
  pm.add(make_bounds_pass(opt));
  pm.add(make_reguse_pass(opt));
}

VerifyReport verify_program(const Program& prog, const VerifyOptions& opt) {
  if (const std::string err = verify(prog); !err.empty()) {
    VerifyReport report;
    report.program = prog.name;
    report.diags.push_back({Severity::Error, "structure", "", -1, err});
    return report;
  }
  PassManager pm;
  add_standard_passes(pm, opt);
  return pm.run(prog);
}

}  // namespace pulpc::kir
