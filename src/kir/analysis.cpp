#include "kir/analysis.hpp"

#include <algorithm>

namespace pulpc::kir {

std::vector<double> instruction_weights(const Program& prog,
                                        const StaticCountOptions& opt) {
  std::vector<double> w(prog.code.size(), 1.0);
  for (const LoopMeta& l : prog.loops) {
    const double trip =
        l.trip >= 0 ? static_cast<double>(l.trip) : opt.unknown_trip;
    for (std::uint32_t i = l.body_begin; i < l.body_end; ++i) {
      w[i] *= trip;
    }
  }
  return w;
}

StaticCounts static_counts(const Program& prog,
                           const StaticCountOptions& opt) {
  const std::vector<double> w = instruction_weights(prog, opt);
  StaticCounts c;
  for (std::size_t i = 0; i < prog.code.size(); ++i) {
    const Instr& ins = prog.code[i];
    const double weight = w[i];
    switch (ins.op_class()) {
      case OpClass::Alu: c.alu += weight; break;
      case OpClass::Div: c.div += weight; break;
      case OpClass::Fp: c.fp += weight; break;
      case OpClass::FpDiv: c.fpdiv += weight; break;
      case OpClass::MemL1:
        if (ins.op == Op::Lw || ins.op == Op::Flw) {
          c.load_tcdm += weight;
        } else {
          c.store_tcdm += weight;
        }
        break;
      case OpClass::MemL2:
        if (ins.op == Op::Lw || ins.op == Op::Flw) {
          c.load_l2 += weight;
        } else {
          c.store_l2 += weight;
        }
        break;
      case OpClass::Branch: c.branch += weight; break;
      case OpClass::Nop: c.nop += weight; break;
      case OpClass::Sync: c.sync += weight; break;
    }
  }
  return c;
}

double avg_parallel_iters(const Program& prog) {
  if (prog.regions.empty()) return 1.0;
  double sum = 0;
  for (const ParallelRegionMeta& r : prog.regions) {
    sum += r.total_iters >= 0 ? static_cast<double>(r.total_iters) : 1.0;
  }
  return sum / static_cast<double>(prog.regions.size());
}

double transfer_bytes(const Program& prog) {
  double sum = 0;
  for (const BufferInfo& b : prog.buffers) sum += b.bytes();
  return sum;
}

std::vector<Instr> hottest_block(const Program& prog) {
  const std::vector<double> w = instruction_weights(prog);

  auto contains_loop = [&](const LoopMeta& outer) {
    return std::any_of(prog.loops.begin(), prog.loops.end(),
                       [&](const LoopMeta& inner) {
                         return &inner != &outer &&
                                outer.body_begin <= inner.body_begin &&
                                inner.body_end <= outer.body_end;
                       });
  };

  const LoopMeta* best = nullptr;
  double best_weight = -1.0;
  for (const LoopMeta& l : prog.loops) {
    if (contains_loop(l)) continue;
    double total = 0;
    for (std::uint32_t i = l.body_begin; i < l.body_end; ++i) total += w[i];
    if (total > best_weight) {
      best_weight = total;
      best = &l;
    }
  }

  std::vector<Instr> block;
  auto keep = [](const Instr& ins) {
    const OpClass cls = ins.op_class();
    return cls != OpClass::Branch && cls != OpClass::Sync;
  };
  if (best != nullptr) {
    for (std::uint32_t i = best->body_begin; i < best->body_end; ++i) {
      if (keep(prog.code[i])) block.push_back(prog.code[i]);
    }
  }
  if (block.empty()) {
    for (const Instr& ins : prog.code) {
      if (keep(ins)) block.push_back(ins);
    }
  }
  return block;
}

}  // namespace pulpc::kir
