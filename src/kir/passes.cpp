#include "kir/passes.hpp"

#include <algorithm>
#include <bit>
#include <sstream>
#include <tuple>

#include "kir/operands.hpp"

namespace pulpc::kir {

const char* to_string(Severity s) noexcept {
  switch (s) {
    case Severity::Note: return "note";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "?";
}

std::string Diagnostic::to_string() const {
  std::ostringstream os;
  os << kir::to_string(severity) << " [" << pass << "] ";
  if (!location.empty()) os << location << ": ";
  os << message;
  return os.str();
}

std::size_t VerifyReport::count(Severity s) const noexcept {
  std::size_t n = 0;
  for (const auto& d : diags) n += (d.severity == s);
  return n;
}

std::string VerifyReport::to_string() const {
  std::ostringstream os;
  os << program << ": " << errors() << " error(s), " << warnings()
     << " warning(s), " << notes() << " note(s)\n";
  for (const Severity want :
       {Severity::Error, Severity::Warning, Severity::Note}) {
    for (const auto& d : diags) {
      if (d.severity == want) os << "  " << d.to_string() << "\n";
    }
  }
  return os.str();
}

std::string instr_location(const Program& prog, std::uint32_t pc) {
  std::ostringstream os;
  os << "instr " << pc;
  if (pc < prog.code.size()) os << " (" << to_string(prog.code[pc]) << ")";
  return os.str();
}

const Cfg& AnalysisContext::cfg() {
  if (!cfg_) cfg_ = build_cfg(prog_);
  return *cfg_;
}

std::uint32_t AnalysisContext::kernel_begin() {
  if (!kernel_begin_) {
    std::uint32_t k = 0;
    for (std::uint32_t i = 0; i < prog_.code.size(); ++i) {
      if (prog_.code[i].op == Op::MarkEnter) {
        k = i;
        break;
      }
    }
    kernel_begin_ = k;
  }
  return *kernel_begin_;
}

namespace {

/// Dense bitset over basic blocks (row of the postdominator matrix).
class BlockSet {
 public:
  explicit BlockSet(std::size_t n) : words_((n + 63) / 64, 0) {}
  void set(std::size_t i) { words_[i / 64] |= 1ull << (i % 64); }
  [[nodiscard]] bool test(std::size_t i) const {
    return (words_[i / 64] >> (i % 64)) & 1u;
  }
  void fill() {
    for (auto& w : words_) w = ~0ull;
  }
  /// *this &= other; returns true when *this changed.
  bool intersect(const BlockSet& other) {
    bool changed = false;
    for (std::size_t w = 0; w < words_.size(); ++w) {
      const std::uint64_t nw = words_[w] & other.words_[w];
      changed |= nw != words_[w];
      words_[w] = nw;
    }
    return changed;
  }
  [[nodiscard]] std::size_t popcount() const {
    std::size_t n = 0;
    for (const auto w : words_) n += std::popcount(w);
    return n;
  }

 private:
  std::vector<std::uint64_t> words_;
};

}  // namespace

const std::vector<std::uint32_t>& AnalysisContext::ipostdom() {
  if (ipostdom_) return *ipostdom_;
  const Cfg& g = cfg();
  const std::size_t nb = g.blocks.size();
  // Postdominator sets by iterative intersection: pdom(exit) = {exit};
  // pdom(b) = {b} ∪ ∩ pdom(succ). Blocks without successors (Halt) act
  // as exits of a virtual sink.
  std::vector<BlockSet> pdom(nb, BlockSet(nb));
  for (std::size_t b = 0; b < nb; ++b) {
    if (g.blocks[b].succs.empty()) {
      pdom[b].set(b);
    } else {
      pdom[b].fill();
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t b = nb; b-- > 0;) {
      if (g.blocks[b].succs.empty()) continue;
      BlockSet next(nb);
      next.fill();
      for (const auto s : g.blocks[b].succs) next.intersect(pdom[s]);
      next.set(b);
      changed |= pdom[b].intersect(next);
    }
  }
  // The immediate postdominator of b is the postdominator whose own set
  // is exactly pdom(b) minus b itself (the chain element nearest to b).
  std::vector<std::uint32_t> ipdom(nb, kNoBlock);
  for (std::size_t b = 0; b < nb; ++b) {
    const std::size_t want = pdom[b].popcount() - 1;
    for (std::size_t p = 0; p < nb; ++p) {
      if (p == b || !pdom[b].test(p)) continue;
      if (pdom[p].popcount() == want) {
        ipdom[b] = static_cast<std::uint32_t>(p);
        break;
      }
    }
  }
  ipostdom_ = std::move(ipdom);
  return *ipostdom_;
}

namespace {

/// Register slots (int r = bit r, float f = bit 32 + f) an instruction
/// makes divergent or uniform, given the divergence of its inputs.
bool writes_divergent(const Instr& ins, std::uint64_t in_mask,
                      bool control_divergent) {
  if (ins.op == Op::CoreId) return true;
  // Loads may observe per-core data (chunk-local buffer contents).
  if (ins.op == Op::Lw || ins.op == Op::Flw) return true;
  if (control_divergent) return true;
  const Operands ops = operands_of(ins);
  for (int i = 0; i < ops.n_reads; ++i) {
    if ((in_mask >> ops.reads[i].slot()) & 1u) return true;
  }
  return false;
}

}  // namespace

const DivergenceInfo& AnalysisContext::divergence() {
  if (divergence_) return *divergence_;
  const Program& p = prog_;
  const Cfg& g = cfg();
  const auto& ipdom = ipostdom();
  const std::size_t nb = g.blocks.size();

  std::vector<std::vector<std::uint32_t>> preds(nb);
  for (std::size_t b = 0; b < nb; ++b) {
    for (const auto s : g.blocks[b].succs) {
      preds[s].push_back(static_cast<std::uint32_t>(b));
    }
  }

  DivergenceInfo info;
  info.divergent_block.assign(nb, false);
  info.divergent_branch.assign(nb, false);
  std::vector<std::uint64_t> block_in(nb, 0), block_out(nb, 0);

  // Mutual fixpoint: register divergence feeds branch divergence feeds
  // control (block) divergence feeds register divergence. All three only
  // grow except register masks, which are recomputed from scratch each
  // outer round against the monotone divergent_block set, so the outer
  // iteration terminates.
  bool outer_changed = true;
  while (outer_changed) {
    outer_changed = false;
    // Inner fixpoint: forward register-divergence dataflow.
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t b = 0; b < nb; ++b) {
        std::uint64_t in = 0;
        for (const auto pr : preds[b]) in |= block_out[pr];
        std::uint64_t m = in;
        const bool cdiv = info.divergent_block[b];
        for (std::uint32_t pc = g.blocks[b].begin; pc < g.blocks[b].end;
             ++pc) {
          const Instr& ins = p.code[pc];
          const Operands ops = operands_of(ins);
          if (ops.n_writes == 0) continue;
          const int slot = ops.writes[0].slot();
          if (writes_divergent(ins, m, cdiv)) {
            m |= 1ull << slot;
          } else {
            m &= ~(1ull << slot);
          }
        }
        if (in != block_in[b] || m != block_out[b]) {
          block_in[b] = in;
          block_out[b] = m;
          changed = true;
        }
      }
    }
    // Branch divergence + control-divergent regions (blocks reachable
    // from a divergent branch's successors before its reconvergence
    // point, the immediate postdominator).
    for (std::size_t b = 0; b < nb; ++b) {
      if (g.blocks[b].succs.size() < 2) continue;
      const Instr& term = p.code[g.blocks[b].end - 1];
      if (!is_branch(term.op) || term.op == Op::Jmp) continue;
      // In-state at the terminator.
      std::uint64_t m = block_in[b];
      for (std::uint32_t pc = g.blocks[b].begin; pc + 1 < g.blocks[b].end;
           ++pc) {
        const Instr& ins = p.code[pc];
        const Operands ops = operands_of(ins);
        if (ops.n_writes == 0) continue;
        const int slot = ops.writes[0].slot();
        if (writes_divergent(ins, m, info.divergent_block[b])) {
          m |= 1ull << slot;
        } else {
          m &= ~(1ull << slot);
        }
      }
      const bool div = ((m >> term.rs1) & 1u) || ((m >> term.rs2) & 1u);
      if (div && !info.divergent_branch[b]) {
        info.divergent_branch[b] = true;
        outer_changed = true;
      }
      if (!info.divergent_branch[b]) continue;
      // Mark the divergent region: DFS from each successor, stopping at
      // the reconvergence block.
      const std::uint32_t stop = ipdom[b];
      std::vector<std::uint32_t> work(g.blocks[b].succs.begin(),
                                      g.blocks[b].succs.end());
      while (!work.empty()) {
        const std::uint32_t cur = work.back();
        work.pop_back();
        if (cur == stop || info.divergent_block[cur]) continue;
        info.divergent_block[cur] = true;
        outer_changed = true;
        for (const auto s : g.blocks[cur].succs) work.push_back(s);
      }
    }
  }

  // Final per-instruction IN states.
  info.div_in.assign(p.code.size(), 0);
  for (std::size_t b = 0; b < nb; ++b) {
    std::uint64_t m = block_in[b];
    for (std::uint32_t pc = g.blocks[b].begin; pc < g.blocks[b].end; ++pc) {
      info.div_in[pc] = m;
      const Instr& ins = p.code[pc];
      const Operands ops = operands_of(ins);
      if (ops.n_writes == 0) continue;
      const int slot = ops.writes[0].slot();
      if (writes_divergent(ins, m, info.divergent_block[b])) {
        m |= 1ull << slot;
      } else {
        m &= ~(1ull << slot);
      }
    }
  }
  divergence_ = std::move(info);
  return *divergence_;
}

VerifyReport PassManager::run(const Program& prog) {
  VerifyReport report;
  report.program = prog.name;
  AnalysisContext ctx(prog);
  for (const auto& pass : passes_) {
    pass->run(ctx, report.diags);
  }
  // Canonical emission order: (instr, pass, severity), with location and
  // message as final tie-breakers so the report is byte-stable regardless
  // of pass registration order; exact duplicates collapse to one record.
  const auto key = [](const Diagnostic& d) {
    return std::tie(d.instr, d.pass, d.severity, d.location, d.message);
  };
  std::sort(report.diags.begin(), report.diags.end(),
            [&key](const Diagnostic& a, const Diagnostic& b) {
              return key(a) < key(b);
            });
  report.diags.erase(
      std::unique(report.diags.begin(), report.diags.end(),
                  [&key](const Diagnostic& a, const Diagnostic& b) {
                    return key(a) == key(b);
                  }),
      report.diags.end());
  return report;
}

}  // namespace pulpc::kir
