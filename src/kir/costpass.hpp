// PassManager integration for the static cost/energy bound analyzer:
// runs kir::analyze_cost over the program and reports precision losses
// (unanalyzable control flow, statically unbounded trip counts) as
// Note-severity diagnostics, so `pulpclass lint` surfaces kernels whose
// bounds degrade to [lo, inf) without failing verification. The computed
// reports are retained on the pass object for callers (the analyze CLI
// verb, the static_bounds feature set) that want the numbers as well as
// the diagnostics.
#pragma once

#include <vector>

#include "kir/costmodel.hpp"
#include "kir/passes.hpp"

namespace pulpc::kir {

class CostBoundPass final : public Pass {
 public:
  explicit CostBoundPass(CostParams params = {}) : params_(params) {}

  [[nodiscard]] const char* name() const noexcept override {
    return "costbounds";
  }

  void run(AnalysisContext& ctx, std::vector<Diagnostic>& out) override;

  /// Reports for every program analyzed by this pass instance, in run
  /// order (PassManager reuses pass objects across programs).
  [[nodiscard]] const std::vector<CostReport>& reports() const noexcept {
    return reports_;
  }

 private:
  CostParams params_;
  std::vector<CostReport> reports_;
};

}  // namespace pulpc::kir
