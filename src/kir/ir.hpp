// Kernel IR (KIR): a small register-based, RISC-V-flavoured intermediate
// representation. It plays the role LLVM-IR plays in the paper: the DSL
// front-end (src/dsl) lowers kernel "source code" to KIR, the cluster
// simulator (src/sim) executes KIR, and the static analyses (kir/analysis,
// src/mca, src/feat) parse KIR at compile time without running it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pulpc::kir {

/// Element type of a value or buffer. PULP processing elements support
/// 32-bit integers and single-precision floats (no doubles, per the paper).
enum class DType : std::uint8_t { I32, F32 };

/// Memory space of a buffer / memory access. The paper assumes all kernel
/// data lives in the on-cluster TCDM; L2 is exercised by a few custom
/// kernels and by the DMA setup path.
enum class MemSpace : std::uint8_t { None, Tcdm, L2 };

/// KIR opcodes, grouped in the operating-region classes priced by the
/// paper's Table I energy model (ALU, FP, L1/L2 access, NOP, control).
enum class Op : std::uint8_t {
  // Integer ALU (single cycle on RI5CY, including multiply and the
  // DSP-extension mac/min/max/abs).
  Add, Sub, Mul, Mac, Slt, And, Or, Xor, Shl, Shr,
  Min, Max, Abs,
  AddI, MulI, AndI, OrI, XorI, ShlI, ShrI, SltI,
  Li,   ///< rd = imm
  Mv,   ///< rd = rs1
  // Integer divider (serial, multi-cycle).
  Div, Rem,
  // Floating point (executed on the shared FPU pool).
  FAdd, FSub, FMul, FMac, FMin, FMax, FAbs, FNeg, FMv,
  FLi,     ///< fd = bit_cast<float>(imm)
  FLt, FLe, FEq,  ///< integer rd = compare(fs1, fs2)
  CvtSW,   ///< fd = float(rs1)
  CvtWS,   ///< rd = int(fs1), truncating
  // Floating-point divider / sqrt (multi-cycle, occupies the FPU).
  FDiv, FSqrt,
  // Memory. Address = int_reg[rs1] + imm. `mem` annotates the space.
  Lw,   ///< int load
  Sw,   ///< int store (value in rs2)
  Flw,  ///< float load
  Fsw,  ///< float store (value in fp reg rs2)
  // Control flow. Branch/jump targets are absolute instruction indices
  // stored in `imm`.
  Beq, Bne, Blt, Bge,
  Jmp,
  // Active wait (priced as NOP in the energy model).
  Nop,
  // Runtime pseudo-ops (the OpenMP-like runtime surface).
  Barrier,    ///< event-unit barrier; waiting cores are clock-gated
  CoreId,     ///< rd = id of the executing core
  NumCores,   ///< rd = number of cores running the kernel
  CritEnter,  ///< acquire spin lock `imm` (active-wait NOPs while contended)
  CritExit,   ///< release spin lock `imm`
  DmaStart,   ///< start DMA copy: src = int_reg[rs1], dst = int_reg[rs2],
              ///< word count = int_reg[rd] (rd is a *source* here)
  DmaWait,    ///< clock-gate until the DMA engine is idle
  MarkEnter,  ///< kernel-region entry marker (the paper's `void kernel(...)`)
  MarkExit,   ///< kernel-region exit marker
  Halt,       ///< core stops executing
};

/// Coarse operating-region class of an opcode; maps 1:1 onto the rows of
/// the Table I processing-element energy model.
enum class OpClass : std::uint8_t {
  Alu,     ///< integer ALU, moves, compares, address math
  Div,     ///< integer divider (ALU-priced, multi-cycle)
  Fp,      ///< shared-FPU single-cycle ops
  FpDiv,   ///< shared-FPU multi-cycle divide/sqrt
  MemL1,   ///< TCDM access
  MemL2,   ///< off-cluster L2 access
  Branch,  ///< control flow
  Nop,     ///< active wait
  Sync,    ///< barrier / critical / markers / halt / runtime queries
};

/// Classify an opcode. Memory ops are classified MemL1/MemL2 from the
/// instruction's `mem` annotation by `Instr::op_class()`; this function
/// returns MemL1 for them by default.
[[nodiscard]] OpClass op_class(Op op) noexcept;

/// True for Lw/Sw/Flw/Fsw.
[[nodiscard]] bool is_memory(Op op) noexcept;
/// True for Beq/Bne/Blt/Bge/Jmp.
[[nodiscard]] bool is_branch(Op op) noexcept;
/// Assembly-style mnemonic ("fadd", "lw", ...).
[[nodiscard]] const char* mnemonic(Op op) noexcept;
/// Reverse lookup of `mnemonic`; returns false for unknown mnemonics.
[[nodiscard]] bool op_from_mnemonic(const std::string& name, Op& out);

/// Number of architectural registers in each register file.
inline constexpr int kNumRegs = 32;

/// One KIR instruction. Register fields index the integer or the
/// floating-point register file depending on the opcode; `imm` holds
/// immediates, memory offsets, branch targets (absolute instruction
/// indices) and lock ids.
struct Instr {
  Op op = Op::Nop;
  std::uint8_t rd = 0;
  std::uint8_t rs1 = 0;
  std::uint8_t rs2 = 0;
  std::int32_t imm = 0;
  MemSpace mem = MemSpace::None;  ///< set on memory ops by the front-end

  /// Operating-region class, using `mem` to split L1 from L2 accesses.
  [[nodiscard]] OpClass op_class() const noexcept;
};

/// Static loop metadata attached by the front-end (the analog of LLVM loop
/// info + scalar-evolution trip counts). `body_begin..body_end` is the
/// half-open instruction range of header + body + latch.
struct LoopMeta {
  std::uint32_t body_begin = 0;
  std::uint32_t body_end = 0;
  /// Compile-time trip count of the *whole* loop (total iterations across
  /// all cores for parallel loops); < 0 when not statically known.
  std::int64_t trip = -1;
  bool parallel = false;
};

/// Static metadata for one parallel region (one `#pragma omp parallel for`
/// in the paper's kernels).
struct ParallelRegionMeta {
  std::uint32_t begin = 0;
  std::uint32_t end = 0;
  /// Total loop iterations the region distributes over the cores;
  /// < 0 when not statically known.
  std::int64_t total_iters = -1;
};

/// How a buffer is filled before execution (copied from the DSL
/// declaration so the simulator can initialise memory deterministically).
enum class BufInit : std::uint8_t { Zero, Ramp, Random, RandomPos };

/// A buffer the kernel works on. Base addresses are assigned by the
/// front-end allocator inside the TCDM or L2 address ranges.
struct BufferInfo {
  std::string name;
  DType elem = DType::I32;
  MemSpace space = MemSpace::Tcdm;
  std::uint32_t base = 0;    ///< byte address
  std::uint32_t elems = 0;   ///< element count
  BufInit init = BufInit::Random;
  [[nodiscard]] std::uint32_t bytes() const noexcept { return elems * 4u; }
};

/// A lowered kernel: flat code plus the static metadata the paper's
/// compile-time analysis consumes.
struct Program {
  std::string name;
  std::vector<Instr> code;
  std::vector<LoopMeta> loops;
  std::vector<ParallelRegionMeta> regions;
  std::vector<BufferInfo> buffers;
  std::uint32_t entry = 0;

  [[nodiscard]] std::size_t size() const noexcept { return code.size(); }
};

/// Validate structural invariants (branch targets in range, register
/// indices < kNumRegs, memory ops annotated with a space, loop ranges
/// well-formed and properly nested, marker pairing). Returns an empty
/// string when valid, otherwise a description of the first violation.
[[nodiscard]] std::string verify(const Program& prog);

/// Assembly-like textual dump (one instruction per line, loop/region
/// annotations as comments).
[[nodiscard]] std::string to_string(const Program& prog);

/// One-line disassembly of a single instruction.
[[nodiscard]] std::string to_string(const Instr& ins);

[[nodiscard]] const char* to_string(DType t) noexcept;
[[nodiscard]] const char* to_string(MemSpace s) noexcept;

}  // namespace pulpc::kir
