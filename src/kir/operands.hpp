// Register operand model: which registers an instruction reads and
// writes, and in which register file. Shared by the machine-code
// analyser (dependency chains) and the optimiser (value numbering,
// liveness).
#pragma once

#include <array>
#include <cstdint>

#include "kir/ir.hpp"

namespace pulpc::kir {

/// Which Instr member an operand lives in (for rewriting passes).
enum class Field : std::uint8_t { Rd, Rs1, Rs2 };

/// A register reference: file + index + source field.
struct RegRef {
  bool fp = false;
  std::uint8_t idx = 0;
  Field field = Field::Rd;

  /// Flat slot in the combined namespace (fp registers offset +32).
  [[nodiscard]] int slot() const noexcept { return idx + (fp ? 32 : 0); }
  friend bool operator==(const RegRef&, const RegRef&) = default;
};

/// Set the register index of the given field.
inline void set_field(Instr& ins, Field f, std::uint8_t idx) noexcept {
  switch (f) {
    case Field::Rd: ins.rd = idx; break;
    case Field::Rs1: ins.rs1 = idx; break;
    case Field::Rs2: ins.rs2 = idx; break;
  }
}

/// Operand sets of one instruction. `reads` may include the destination
/// (mac/fmac accumulate in place; dma.start uses rd as a source).
struct Operands {
  std::array<RegRef, 3> reads{};
  int n_reads = 0;
  std::array<RegRef, 1> writes{};
  int n_writes = 0;
};

/// Compute the operand sets. Sync pseudo-ops without register traffic
/// (barrier, markers, halt, critical) report zero operands.
[[nodiscard]] Operands operands_of(const Instr& ins) noexcept;

}  // namespace pulpc::kir
