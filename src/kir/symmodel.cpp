#include "kir/symmodel.hpp"

namespace pulpc::kir {

long long smul(long long a, long long b) {
  const __int128 p = static_cast<__int128>(sat(a)) * sat(b);
  if (p > kInf) return kInf;
  if (p < -kInf) return -kInf;
  return static_cast<long long>(p);
}

Ival imul(Ival a, Ival b) {
  const long long c[4] = {smul(a.lo, b.lo), smul(a.lo, b.hi),
                          smul(a.hi, b.lo), smul(a.hi, b.hi)};
  return {*std::min_element(c, c + 4), *std::max_element(c, c + 4)};
}

void SymExpr::add_term(int sym, long long c) {
  if (c == 0) return;
  auto it = std::lower_bound(terms.begin(), terms.end(), sym,
                             [](const auto& t, int s) { return t.first < s; });
  if (it != terms.end() && it->first == sym) {
    it->second = sadd(it->second, c);
    if (it->second == 0) terms.erase(it);
  } else {
    terms.insert(it, {sym, c});
  }
}

SymExpr form_sym(int sym) {
  SymExpr f;
  f.add_term(sym, 1);
  return f;
}

SymExpr form_add(const SymExpr& a, const SymExpr& b) {
  SymExpr r = a;
  for (const auto& [s, c] : b.terms) r.add_term(s, c);
  r.c0 = sadd(r.c0, b.c0);
  return r;
}

SymExpr form_scale(const SymExpr& a, long long k) {
  SymExpr r;
  for (const auto& [s, c] : a.terms) {
    const long long sc = smul(c, k);
    if (sc != 0) r.add_term(s, sc);
  }
  r.c0 = smul(a.c0, k);
  return r;
}

SymExpr form_sub(const SymExpr& a, const SymExpr& b) {
  return form_add(a, form_scale(b, -1));
}

}  // namespace pulpc::kir
