// Shared symbolic-value lattice for the KIR static analyses: saturating
// int64 interval arithmetic and sparse linear forms over analysis symbols.
// Extracted from the verifier's race/bounds memory model so the cost/energy
// bound analyzer (kir/costmodel) prices loops and addresses with the same
// arithmetic the race pass uses to prove access disjointness.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

namespace pulpc::kir {

// ---------------------------------------------------------------------------
// Saturating int64 interval arithmetic. Values saturate at +/-2^60 so that
// sums of two saturated values cannot wrap in 64 bits; kInf doubles as the
// "statically unbounded" marker in trip counts and cost intervals.

inline constexpr long long kInf = 1ll << 60;

[[nodiscard]] inline long long sat(long long v) {
  return std::clamp(v, -kInf, kInf);
}

[[nodiscard]] inline long long sadd(long long a, long long b) {
  return sat(sat(a) + sat(b));  // |a|,|b| <= 2^60 so the sum cannot wrap
}

[[nodiscard]] long long smul(long long a, long long b);

/// Closed interval [lo, hi]; default-constructed = top (unknown value).
struct Ival {
  long long lo = -kInf;
  long long hi = kInf;
};

[[nodiscard]] inline Ival iadd(Ival a, Ival b) {
  return {sadd(a.lo, b.lo), sadd(a.hi, b.hi)};
}

[[nodiscard]] inline Ival iscale(Ival a, long long k) {
  if (k >= 0) return {smul(a.lo, k), smul(a.hi, k)};
  return {smul(a.hi, k), smul(a.lo, k)};
}

[[nodiscard]] Ival imul(Ival a, Ival b);

// ---------------------------------------------------------------------------
// Sparse linear forms c0 + sum(coeff_i * sym_i) over analysis symbols.
// What a symbol id denotes is up to the client analysis (the verifier binds
// loop-induction/core-id/opaque symbols; the cost model binds loop vars).

struct SymExpr {
  /// Sorted (symbol id, coefficient) pairs; zero coefficients removed.
  std::vector<std::pair<int, long long>> terms;
  long long c0 = 0;

  [[nodiscard]] bool is_const() const { return terms.empty(); }

  void add_term(int sym, long long c);
};

[[nodiscard]] inline SymExpr form_const(long long c) {
  return {.terms = {}, .c0 = sat(c)};
}

[[nodiscard]] SymExpr form_sym(int sym);
[[nodiscard]] SymExpr form_add(const SymExpr& a, const SymExpr& b);
[[nodiscard]] SymExpr form_scale(const SymExpr& a, long long k);
[[nodiscard]] SymExpr form_sub(const SymExpr& a, const SymExpr& b);

}  // namespace pulpc::kir
