#include "kir/ir.hpp"

#include <algorithm>
#include <bit>
#include <sstream>
#include <unordered_map>

namespace pulpc::kir {

OpClass op_class(Op op) noexcept {
  switch (op) {
    case Op::Add:
    case Op::Sub:
    case Op::Mul:
    case Op::Mac:
    case Op::Slt:
    case Op::And:
    case Op::Or:
    case Op::Xor:
    case Op::Shl:
    case Op::Shr:
    case Op::Min:
    case Op::Max:
    case Op::Abs:
    case Op::AddI:
    case Op::MulI:
    case Op::AndI:
    case Op::OrI:
    case Op::XorI:
    case Op::ShlI:
    case Op::ShrI:
    case Op::SltI:
    case Op::Li:
    case Op::Mv:
      return OpClass::Alu;
    case Op::Div:
    case Op::Rem:
      return OpClass::Div;
    case Op::FAdd:
    case Op::FSub:
    case Op::FMul:
    case Op::FMac:
    case Op::FMin:
    case Op::FMax:
    case Op::FAbs:
    case Op::FNeg:
    case Op::FMv:
    case Op::FLi:
    case Op::FLt:
    case Op::FLe:
    case Op::FEq:
    case Op::CvtSW:
    case Op::CvtWS:
      return OpClass::Fp;
    case Op::FDiv:
    case Op::FSqrt:
      return OpClass::FpDiv;
    case Op::Lw:
    case Op::Sw:
    case Op::Flw:
    case Op::Fsw:
      return OpClass::MemL1;
    case Op::Beq:
    case Op::Bne:
    case Op::Blt:
    case Op::Bge:
    case Op::Jmp:
      return OpClass::Branch;
    case Op::Nop:
      return OpClass::Nop;
    case Op::Barrier:
    case Op::CoreId:
    case Op::NumCores:
    case Op::CritEnter:
    case Op::CritExit:
    case Op::DmaStart:
    case Op::DmaWait:
    case Op::MarkEnter:
    case Op::MarkExit:
    case Op::Halt:
      return OpClass::Sync;
  }
  return OpClass::Alu;
}

OpClass Instr::op_class() const noexcept {
  if (is_memory(op) && mem == MemSpace::L2) return OpClass::MemL2;
  return kir::op_class(op);
}

bool is_memory(Op op) noexcept {
  return op == Op::Lw || op == Op::Sw || op == Op::Flw || op == Op::Fsw;
}

bool is_branch(Op op) noexcept {
  return op == Op::Beq || op == Op::Bne || op == Op::Blt || op == Op::Bge ||
         op == Op::Jmp;
}

const char* mnemonic(Op op) noexcept {
  switch (op) {
    case Op::Add: return "add";
    case Op::Sub: return "sub";
    case Op::Mul: return "mul";
    case Op::Mac: return "mac";
    case Op::Slt: return "slt";
    case Op::And: return "and";
    case Op::Or: return "or";
    case Op::Xor: return "xor";
    case Op::Shl: return "sll";
    case Op::Shr: return "sra";
    case Op::Min: return "min";
    case Op::Max: return "max";
    case Op::Abs: return "abs";
    case Op::AddI: return "addi";
    case Op::MulI: return "muli";
    case Op::AndI: return "andi";
    case Op::OrI: return "ori";
    case Op::XorI: return "xori";
    case Op::ShlI: return "slli";
    case Op::ShrI: return "srai";
    case Op::SltI: return "slti";
    case Op::Li: return "li";
    case Op::Mv: return "mv";
    case Op::Div: return "div";
    case Op::Rem: return "rem";
    case Op::FAdd: return "fadd.s";
    case Op::FSub: return "fsub.s";
    case Op::FMul: return "fmul.s";
    case Op::FMac: return "fmadd.s";
    case Op::FMin: return "fmin.s";
    case Op::FMax: return "fmax.s";
    case Op::FAbs: return "fabs.s";
    case Op::FNeg: return "fneg.s";
    case Op::FMv: return "fmv.s";
    case Op::FLi: return "fli.s";
    case Op::FLt: return "flt.s";
    case Op::FLe: return "fle.s";
    case Op::FEq: return "feq.s";
    case Op::CvtSW: return "fcvt.s.w";
    case Op::CvtWS: return "fcvt.w.s";
    case Op::FDiv: return "fdiv.s";
    case Op::FSqrt: return "fsqrt.s";
    case Op::Lw: return "lw";
    case Op::Sw: return "sw";
    case Op::Flw: return "flw";
    case Op::Fsw: return "fsw";
    case Op::Beq: return "beq";
    case Op::Bne: return "bne";
    case Op::Blt: return "blt";
    case Op::Bge: return "bge";
    case Op::Jmp: return "j";
    case Op::Nop: return "nop";
    case Op::Barrier: return "barrier";
    case Op::CoreId: return "coreid";
    case Op::NumCores: return "numcores";
    case Op::CritEnter: return "crit.enter";
    case Op::CritExit: return "crit.exit";
    case Op::DmaStart: return "dma.start";
    case Op::DmaWait: return "dma.wait";
    case Op::MarkEnter: return "kernel.enter";
    case Op::MarkExit: return "kernel.exit";
    case Op::Halt: return "halt";
  }
  return "?";
}

bool op_from_mnemonic(const std::string& name, Op& out) {
  static const std::unordered_map<std::string, Op> kMap = [] {
    std::unordered_map<std::string, Op> m;
    for (int i = 0; i <= static_cast<int>(Op::Halt); ++i) {
      const Op op = static_cast<Op>(i);
      m.emplace(mnemonic(op), op);
    }
    return m;
  }();
  const auto it = kMap.find(name);
  if (it == kMap.end()) return false;
  out = it->second;
  return true;
}

const char* to_string(DType t) noexcept {
  return t == DType::I32 ? "i32" : "f32";
}

const char* to_string(MemSpace s) noexcept {
  switch (s) {
    case MemSpace::None: return "none";
    case MemSpace::Tcdm: return "tcdm";
    case MemSpace::L2: return "l2";
  }
  return "?";
}

namespace {

/// Operand-format category used by the printer.
enum class Fmt {
  RRR,      // rd, rs1, rs2
  RRI,      // rd, rs1, imm
  RI,       // rd, imm
  RR,       // rd, rs1
  MemLoad,  // rd, imm(rs1)
  MemStore, // rs2, imm(rs1)
  BrRR,     // rs1, rs2, target
  Target,   // target
  Imm,      // imm
  R,        // rd
  None,
};

Fmt format_of(Op op) {
  switch (op) {
    case Op::Add: case Op::Sub: case Op::Mul: case Op::Slt: case Op::And:
    case Op::Or: case Op::Xor: case Op::Shl: case Op::Shr: case Op::Min:
    case Op::Max: case Op::FAdd: case Op::FSub: case Op::FMul: case Op::FMin:
    case Op::FMax: case Op::FDiv: case Op::Div: case Op::Rem: case Op::FLt:
    case Op::FLe: case Op::FEq: case Op::Mac: case Op::FMac:
      return Fmt::RRR;
    case Op::AddI: case Op::MulI: case Op::AndI: case Op::OrI: case Op::XorI:
    case Op::ShlI: case Op::ShrI: case Op::SltI:
      return Fmt::RRI;
    case Op::Li: case Op::FLi:
      return Fmt::RI;
    case Op::Mv: case Op::FMv: case Op::Abs: case Op::FAbs: case Op::FNeg:
    case Op::FSqrt: case Op::CvtSW: case Op::CvtWS:
      return Fmt::RR;
    case Op::Lw: case Op::Flw:
      return Fmt::MemLoad;
    case Op::Sw: case Op::Fsw:
      return Fmt::MemStore;
    case Op::Beq: case Op::Bne: case Op::Blt: case Op::Bge:
      return Fmt::BrRR;
    case Op::Jmp:
      return Fmt::Target;
    case Op::CritEnter: case Op::CritExit:
      return Fmt::Imm;
    case Op::DmaStart:
      return Fmt::RRR;
    case Op::CoreId: case Op::NumCores:
      return Fmt::R;
    default:
      return Fmt::None;
  }
}

bool is_fp_regfile(Op op, int operand /*0=rd,1=rs1,2=rs2*/) {
  const OpClass cls = op_class(op);
  switch (op) {
    case Op::Flw: return operand == 0;   // fd, addr in int rs1
    case Op::Fsw: return operand == 2;   // value in fp rs2, addr int rs1
    case Op::FLt:
    case Op::FLe:
    case Op::FEq: return operand != 0;   // int rd, fp sources
    case Op::CvtSW: return operand == 0; // fd <- int rs1
    case Op::CvtWS: return operand == 1; // rd <- fp rs1
    default:
      return cls == OpClass::Fp || cls == OpClass::FpDiv;
  }
}

std::string reg_name(Op op, int operand, std::uint8_t idx) {
  const char prefix = is_fp_regfile(op, operand) ? 'f' : 'r';
  return std::string(1, prefix) + std::to_string(idx);
}

}  // namespace

std::string to_string(const Instr& ins) {
  std::ostringstream os;
  os << mnemonic(ins.op);
  switch (format_of(ins.op)) {
    case Fmt::RRR:
      os << ' ' << reg_name(ins.op, 0, ins.rd) << ", "
         << reg_name(ins.op, 1, ins.rs1) << ", "
         << reg_name(ins.op, 2, ins.rs2);
      break;
    case Fmt::RRI:
      os << ' ' << reg_name(ins.op, 0, ins.rd) << ", "
         << reg_name(ins.op, 1, ins.rs1) << ", " << ins.imm;
      break;
    case Fmt::RI:
      if (ins.op == Op::FLi) {
        os << ' ' << reg_name(ins.op, 0, ins.rd) << ", "
           << std::bit_cast<float>(ins.imm);
      } else {
        os << ' ' << reg_name(ins.op, 0, ins.rd) << ", " << ins.imm;
      }
      break;
    case Fmt::RR:
      os << ' ' << reg_name(ins.op, 0, ins.rd) << ", "
         << reg_name(ins.op, 1, ins.rs1);
      break;
    case Fmt::MemLoad:
      os << ' ' << reg_name(ins.op, 0, ins.rd) << ", " << ins.imm << '('
         << reg_name(ins.op, 1, ins.rs1) << ')';
      if (ins.mem != MemSpace::None) os << " !" << to_string(ins.mem);
      break;
    case Fmt::MemStore:
      os << ' ' << reg_name(ins.op, 2, ins.rs2) << ", " << ins.imm << '('
         << reg_name(ins.op, 1, ins.rs1) << ')';
      if (ins.mem != MemSpace::None) os << " !" << to_string(ins.mem);
      break;
    case Fmt::BrRR:
      os << ' ' << reg_name(ins.op, 1, ins.rs1) << ", "
         << reg_name(ins.op, 2, ins.rs2) << ", @" << ins.imm;
      break;
    case Fmt::Target:
      os << " @" << ins.imm;
      break;
    case Fmt::Imm:
      os << ' ' << ins.imm;
      break;
    case Fmt::R:
      os << ' ' << reg_name(ins.op, 0, ins.rd);
      break;
    case Fmt::None:
      break;
  }
  return os.str();
}

std::string to_string(const Program& prog) {
  std::ostringstream os;
  os << "; kernel " << prog.name << '\n';
  for (const BufferInfo& b : prog.buffers) {
    os << "; buffer " << b.name << ": " << to_string(b.elem) << '[' << b.elems
       << "] @" << b.base << ' ' << to_string(b.space) << '\n';
  }
  for (const ParallelRegionMeta& r : prog.regions) {
    os << "; parallel region [" << r.begin << ", " << r.end
       << ") iters=" << r.total_iters << '\n';
  }
  for (const LoopMeta& l : prog.loops) {
    os << "; loop [" << l.body_begin << ", " << l.body_end
       << ") trip=" << l.trip << (l.parallel ? " parallel" : "") << '\n';
  }
  for (std::size_t i = 0; i < prog.code.size(); ++i) {
    os << i << ":\t" << to_string(prog.code[i]) << '\n';
  }
  return os.str();
}

std::string verify(const Program& prog) {
  const auto n = static_cast<std::int64_t>(prog.code.size());
  if (n == 0) return "empty program";
  int mark_depth = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    const Instr& ins = prog.code[static_cast<std::size_t>(i)];
    const std::string where = "instr " + std::to_string(i) + " (" +
                              to_string(ins) + "): ";
    if (ins.rd >= kNumRegs || ins.rs1 >= kNumRegs || ins.rs2 >= kNumRegs) {
      return where + "register index out of range";
    }
    if (is_branch(ins.op) && (ins.imm < 0 || ins.imm >= n)) {
      return where + "branch target out of range";
    }
    if (is_memory(ins.op) && ins.mem == MemSpace::None) {
      return where + "memory op without a memory-space annotation";
    }
    if (ins.op == Op::MarkEnter) ++mark_depth;
    if (ins.op == Op::MarkExit) {
      if (--mark_depth < 0) return where + "kernel.exit without kernel.enter";
    }
  }
  if (mark_depth != 0) return "unbalanced kernel region markers";
  if (prog.code.back().op != Op::Halt) return "program does not end in halt";
  for (const LoopMeta& l : prog.loops) {
    if (l.body_begin >= l.body_end || l.body_end > prog.code.size()) {
      return "loop range [" + std::to_string(l.body_begin) + ", " +
             std::to_string(l.body_end) + ") malformed";
    }
  }
  // Loop ranges must nest: any two ranges are disjoint or contained.
  for (std::size_t a = 0; a < prog.loops.size(); ++a) {
    for (std::size_t b = a + 1; b < prog.loops.size(); ++b) {
      const LoopMeta& x = prog.loops[a];
      const LoopMeta& y = prog.loops[b];
      const bool disjoint =
          x.body_end <= y.body_begin || y.body_end <= x.body_begin;
      const bool x_in_y =
          y.body_begin <= x.body_begin && x.body_end <= y.body_end;
      const bool y_in_x =
          x.body_begin <= y.body_begin && y.body_end <= x.body_end;
      if (!disjoint && !x_in_y && !y_in_x) {
        return "loops " + std::to_string(a) + " and " + std::to_string(b) +
               " overlap without nesting";
      }
    }
  }
  for (const ParallelRegionMeta& r : prog.regions) {
    if (r.begin >= r.end || r.end > prog.code.size()) {
      return "parallel region range malformed";
    }
  }
  for (const BufferInfo& b : prog.buffers) {
    if (b.elems == 0) return "buffer " + b.name + " has zero elements";
    if (b.base % 4 != 0) return "buffer " + b.name + " not word aligned";
  }
  if (prog.entry >= prog.code.size()) return "entry point out of range";
  return {};
}

}  // namespace pulpc::kir
