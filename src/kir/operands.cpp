#include "kir/operands.hpp"

namespace pulpc::kir {

Operands operands_of(const Instr& ins) noexcept {
  Operands o;
  const auto read = [&](RegRef r) { o.reads[o.n_reads++] = r; };
  const auto write = [&](RegRef r) { o.writes[o.n_writes++] = r; };
  const auto ir = [&](std::uint8_t idx, Field f) {
    return RegRef{false, idx, f};
  };
  const auto fr = [&](std::uint8_t idx, Field f) {
    return RegRef{true, idx, f};
  };
  switch (ins.op) {
    // rd = f(rs1, rs2), integer.
    case Op::Add: case Op::Sub: case Op::Mul: case Op::Slt: case Op::And:
    case Op::Or: case Op::Xor: case Op::Shl: case Op::Shr: case Op::Min:
    case Op::Max: case Op::Div: case Op::Rem:
      read(ir(ins.rs1, Field::Rs1));
      read(ir(ins.rs2, Field::Rs2));
      write(ir(ins.rd, Field::Rd));
      break;
    case Op::Mac:  // rd += rs1 * rs2
      read(ir(ins.rs1, Field::Rs1));
      read(ir(ins.rs2, Field::Rs2));
      read(ir(ins.rd, Field::Rd));
      write(ir(ins.rd, Field::Rd));
      break;
    case Op::AddI: case Op::MulI: case Op::AndI: case Op::OrI: case Op::XorI:
    case Op::ShlI: case Op::ShrI: case Op::SltI:
      read(ir(ins.rs1, Field::Rs1));
      write(ir(ins.rd, Field::Rd));
      break;
    case Op::Li: case Op::CoreId: case Op::NumCores:
      write(ir(ins.rd, Field::Rd));
      break;
    case Op::Mv: case Op::Abs:
      read(ir(ins.rs1, Field::Rs1));
      write(ir(ins.rd, Field::Rd));
      break;
    // Floating point.
    case Op::FAdd: case Op::FSub: case Op::FMul: case Op::FMin: case Op::FMax:
    case Op::FDiv:
      read(fr(ins.rs1, Field::Rs1));
      read(fr(ins.rs2, Field::Rs2));
      write(fr(ins.rd, Field::Rd));
      break;
    case Op::FMac:
      read(fr(ins.rs1, Field::Rs1));
      read(fr(ins.rs2, Field::Rs2));
      read(fr(ins.rd, Field::Rd));
      write(fr(ins.rd, Field::Rd));
      break;
    case Op::FAbs: case Op::FNeg: case Op::FMv: case Op::FSqrt:
      read(fr(ins.rs1, Field::Rs1));
      write(fr(ins.rd, Field::Rd));
      break;
    case Op::FLi:
      write(fr(ins.rd, Field::Rd));
      break;
    case Op::FLt: case Op::FLe: case Op::FEq:
      read(fr(ins.rs1, Field::Rs1));
      read(fr(ins.rs2, Field::Rs2));
      write(ir(ins.rd, Field::Rd));
      break;
    case Op::CvtSW:
      read(ir(ins.rs1, Field::Rs1));
      write(fr(ins.rd, Field::Rd));
      break;
    case Op::CvtWS:
      read(fr(ins.rs1, Field::Rs1));
      write(ir(ins.rd, Field::Rd));
      break;
    // Memory.
    case Op::Lw:
      read(ir(ins.rs1, Field::Rs1));
      write(ir(ins.rd, Field::Rd));
      break;
    case Op::Flw:
      read(ir(ins.rs1, Field::Rs1));
      write(fr(ins.rd, Field::Rd));
      break;
    case Op::Sw:
      read(ir(ins.rs1, Field::Rs1));
      read(ir(ins.rs2, Field::Rs2));
      break;
    case Op::Fsw:
      read(ir(ins.rs1, Field::Rs1));
      read(fr(ins.rs2, Field::Rs2));
      break;
    // Control flow.
    case Op::Beq: case Op::Bne: case Op::Blt: case Op::Bge:
      read(ir(ins.rs1, Field::Rs1));
      read(ir(ins.rs2, Field::Rs2));
      break;
    // DMA descriptor: rd is a SOURCE (word count).
    case Op::DmaStart:
      read(ir(ins.rs1, Field::Rs1));
      read(ir(ins.rs2, Field::Rs2));
      read(ir(ins.rd, Field::Rd));
      break;
    case Op::Jmp: case Op::Nop: case Op::Barrier: case Op::CritEnter:
    case Op::CritExit: case Op::DmaWait: case Op::MarkEnter:
    case Op::MarkExit: case Op::Halt:
      break;
  }
  return o;
}

}  // namespace pulpc::kir
