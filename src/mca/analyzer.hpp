// Static machine-code analysis producing the paper's Table IIb MCA
// features: micro-ops per cycle, IPC, reverse block throughput and
// per-port resource pressures. The analysed snippet is the kernel's
// hottest straight-line block (kir::hottest_block), repeated
// `iterations` times under ideal-cache / perfect-branch assumptions,
// exactly how the paper runs LLVM-MCA over kernels.
#pragma once

#include <array>
#include <span>
#include <string>

#include "kir/ir.hpp"
#include "mca/machine.hpp"

namespace pulpc::mca {

/// Analysis summary (one row of MCA features).
struct McaResult {
  double instrs = 0;       ///< instructions per block iteration
  double uops = 0;         ///< micro-ops per block iteration
  double cycles_per_iter = 0;  ///< steady-state cycles per iteration
  double ipc = 0;          ///< instructions per cycle
  double uops_per_cycle = 0;
  /// Reverse block throughput: resource-bound cycles per iteration
  /// (LLVM-MCA's Block RThroughput).
  double rthroughput = 0;
  double rp_div = 0;    ///< divider-resource pressure in [0, 1]
  double rp_fpdiv = 0;  ///< FP-divider pressure in [0, 1]
  std::array<double, kNumPorts> rp{};  ///< per-port pressure in [0, 1]
};

/// Decompose one instruction into micro-ops under the model. Sync-class
/// pseudo-ops produce no uops.
[[nodiscard]] std::size_t decompose(const kir::Instr& ins,
                                    const MachineModel& m,
                                    std::array<Uop, 2>& out);

/// Analyse a straight-line block.
[[nodiscard]] McaResult analyze(std::span<const kir::Instr> block,
                                const MachineModel& model = {});

/// Convenience: analyse a whole program's hottest block.
[[nodiscard]] McaResult analyze_program(const kir::Program& prog,
                                        const MachineModel& model = {});

/// Pretty-printed summary (similar in spirit to llvm-mca's report).
[[nodiscard]] std::string report(const McaResult& r);

}  // namespace pulpc::mca
