#include "mca/analyzer.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <vector>

#include "kir/analysis.hpp"
#include "kir/operands.hpp"

namespace pulpc::mca {

namespace {

using kir::Instr;
using kir::Op;
using kir::OpClass;

/// Register slot in the combined dataflow namespace (fp regs offset +32).
constexpr int kSlots = 64;

struct Deps {
  int reads[3] = {-1, -1, -1};
  int writes[2] = {-1, -1};
};

/// Register read/write sets (for the dependency-chain estimate; memory
/// disambiguation is ignored, as in LLVM-MCA).
Deps deps_of(const Instr& ins) {
  const kir::Operands o = kir::operands_of(ins);
  Deps d;
  for (int i = 0; i < o.n_reads; ++i) d.reads[i] = o.reads[i].slot();
  for (int i = 0; i < o.n_writes; ++i) d.writes[i] = o.writes[i].slot();
  return d;
}

unsigned latency_of(const Instr& ins, const MachineModel& m) {
  switch (ins.op) {
    case Op::Mul: case Op::MulI: case Op::Mac: return m.lat_mul;
    case Op::Div: case Op::Rem: return m.lat_div;
    case Op::FDiv: return m.lat_fpdiv;
    case Op::FSqrt: return m.lat_fpsqrt;
    case Op::Lw: case Op::Flw: return m.lat_load;
    case Op::Sw: case Op::Fsw: return m.lat_store;
    default:
      switch (kir::op_class(ins.op)) {
        case OpClass::Fp: case OpClass::FpDiv: return m.lat_fp;
        default: return m.lat_alu;
      }
  }
}

/// Water-fill `cycles` units of load onto the candidate ports of `mask`,
/// equalising the resulting loads as a fair dispatcher would.
void waterfill(std::array<double, kNumPorts>& load, std::uint8_t mask,
               double cycles) {
  std::vector<int> ports;
  for (int p = 0; p < kNumPorts; ++p) {
    if ((mask >> p & 1) != 0) ports.push_back(p);
  }
  if (ports.empty()) return;
  std::sort(ports.begin(), ports.end(),
            [&](int a, int b) { return load[a] < load[b]; });
  // Find the fill level: raise the k lowest-loaded ports to a common level.
  double remaining = cycles;
  std::size_t k = 1;
  while (k < ports.size()) {
    const double gap =
        (load[ports[k]] - load[ports[k - 1]]) * static_cast<double>(k);
    if (gap >= remaining) break;
    remaining -= gap;
    for (std::size_t j = 0; j < k; ++j) load[ports[j]] = load[ports[k]];
    ++k;
  }
  const double level = load[ports[0]] + remaining / static_cast<double>(k);
  for (std::size_t j = 0; j < k; ++j) load[ports[j]] = level;
}

}  // namespace

std::size_t decompose(const Instr& ins, const MachineModel& m,
                      std::array<Uop, 2>& out) {
  switch (ins.op) {
    case Op::Mul: case Op::MulI:
      out[0] = Uop{.port_mask = m.int_mul_ports};
      return 1;
    case Op::Mac:  // multiply + accumulate
      out[0] = Uop{.port_mask = m.int_mul_ports};
      out[1] = Uop{.port_mask = m.int_alu_ports};
      return 2;
    case Op::Div: case Op::Rem:
      out[0] = Uop{.port_mask = m.div_port, .div_cycles = m.div_occupancy};
      return 1;
    case Op::FDiv:
      out[0] = Uop{.port_mask = m.div_port, .fpdiv_cycles = m.fpdiv_occupancy};
      return 1;
    case Op::FSqrt:
      out[0] =
          Uop{.port_mask = m.div_port, .fpdiv_cycles = m.fpsqrt_occupancy};
      return 1;
    case Op::Lw: case Op::Flw:
      out[0] = Uop{.port_mask = m.load_ports};
      return 1;
    case Op::Sw: case Op::Fsw:
      out[0] = Uop{.port_mask = m.store_data_ports};
      out[1] = Uop{.port_mask = m.store_agu_ports};
      return 2;
    case Op::Nop:
      out[0] = Uop{.port_mask = 0};  // dispatch slot only
      return 1;
    default:
      switch (kir::op_class(ins.op)) {
        case OpClass::Alu:
          out[0] = Uop{.port_mask = m.int_alu_ports};
          return 1;
        case OpClass::Fp:
          out[0] = Uop{.port_mask = m.fp_ports};
          return 1;
        case OpClass::Branch:
          out[0] = Uop{.port_mask = m.branch_ports};
          return 1;
        default:
          return 0;  // sync pseudo-ops are invisible to the engine
      }
  }
}

McaResult analyze(std::span<const Instr> block, const MachineModel& model) {
  McaResult r;
  if (block.empty()) return r;

  // ---- uop decomposition and per-candidate-set cycle totals ----
  std::array<double, 256> group_cycles{};  // indexed by port mask
  double total_uops = 0;
  double div_cycles = 0;
  double fpdiv_cycles = 0;
  double instrs = 0;
  for (const Instr& ins : block) {
    std::array<Uop, 2> uops{};
    const std::size_t n = decompose(ins, model, uops);
    if (n == 0) continue;
    instrs += 1;
    for (std::size_t i = 0; i < n; ++i) {
      total_uops += 1;
      group_cycles[uops[i].port_mask] += 1;
      div_cycles += uops[i].div_cycles;
      fpdiv_cycles += uops[i].fpdiv_cycles;
    }
  }
  if (instrs == 0) return r;

  // ---- resource-bound throughput: optimal max port load ----
  // For restricted assignment, the optimum equals
  //   max over port subsets U of (sum of cycles whose mask is within U)
  //                              / |U|.
  double port_bound = 0;
  for (int u = 1; u < 256; ++u) {
    double inside = 0;
    for (int mask = 1; mask < 256; ++mask) {
      if ((mask & ~u) == 0) inside += group_cycles[mask];
    }
    if (inside > 0) {
      port_bound =
          std::max(port_bound, inside / std::popcount(unsigned(u)));
    }
  }
  const double rthroughput =
      std::max({port_bound, div_cycles, fpdiv_cycles,
                total_uops / model.dispatch_width});

  // ---- per-port pressure via fair water-filling ----
  std::array<double, kNumPorts> load{};
  std::vector<int> masks;
  for (int mask = 1; mask < 256; ++mask) {
    if (group_cycles[mask] > 0) masks.push_back(mask);
  }
  std::sort(masks.begin(), masks.end(), [](int a, int b) {
    return std::popcount(unsigned(a)) < std::popcount(unsigned(b));
  });
  for (const int mask : masks) {
    waterfill(load, static_cast<std::uint8_t>(mask), group_cycles[mask]);
  }

  // ---- dependency-chain steady state (register dataflow only) ----
  std::array<double, kSlots> ready{};
  double prev_finish = 0;
  double dep_delta = 0;
  for (int pass = 0; pass < 8; ++pass) {
    double finish = prev_finish;
    for (const Instr& ins : block) {
      std::array<Uop, 2> uops{};
      if (decompose(ins, model, uops) == 0) continue;
      const Deps d = deps_of(ins);
      double start = 0;
      for (const int rd : d.reads) {
        if (rd >= 0) start = std::max(start, ready[rd]);
      }
      const double done = start + latency_of(ins, model);
      for (const int wr : d.writes) {
        if (wr >= 0) ready[wr] = done;
      }
      finish = std::max(finish, done);
    }
    dep_delta = finish - prev_finish;
    prev_finish = finish;
  }

  const double cycles = std::max(rthroughput, dep_delta);

  r.instrs = instrs;
  r.uops = total_uops;
  r.cycles_per_iter = cycles;
  r.rthroughput = rthroughput;
  r.ipc = instrs / cycles;
  r.uops_per_cycle = total_uops / cycles;
  r.rp_div = div_cycles > 0 ? std::min(1.0, div_cycles / cycles) : 0.0;
  r.rp_fpdiv = fpdiv_cycles > 0 ? std::min(1.0, fpdiv_cycles / cycles) : 0.0;
  for (int p = 0; p < kNumPorts; ++p) {
    r.rp[p] = std::min(1.0, load[p] / cycles);
  }
  return r;
}

McaResult analyze_program(const kir::Program& prog,
                          const MachineModel& model) {
  const std::vector<Instr> block = kir::hottest_block(prog);
  return analyze(block, model);
}

std::string report(const McaResult& r) {
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "block: %.0f instrs, %.0f uops\n"
                "cycles/iter: %.2f  (rthroughput %.2f)\n"
                "IPC: %.2f  uops/cycle: %.2f\n"
                "pressure: div=%.2f fpdiv=%.2f\n"
                "ports:    0=%.2f 1=%.2f 2=%.2f 3=%.2f 4=%.2f 5=%.2f "
                "6=%.2f 7=%.2f\n",
                r.instrs, r.uops, r.cycles_per_iter, r.rthroughput, r.ipc,
                r.uops_per_cycle, r.rp_div, r.rp_fpdiv, r.rp[0], r.rp[1],
                r.rp[2], r.rp[3], r.rp[4], r.rp[5], r.rp[6], r.rp[7]);
  return buf;
}

}  // namespace pulpc::mca
