// Machine model for the machine-code analyser. The paper feeds kernels to
// LLVM-MCA, which models a generic out-of-order x86-like execution engine
// and reports *port pressures* as a static fingerprint of the code; it is
// deliberately NOT a PULP model. This model mirrors that setup: an 8-port
// dispatch engine (Table IIb's RP0..RP7 port roles) plus serial divider
// and FP-divider resources.
#pragma once

#include <array>
#include <cstdint>

namespace pulpc::mca {

/// Number of execution ports (Table IIb lists ports 0..7).
inline constexpr int kNumPorts = 8;

/// One micro-operation: a set of candidate ports (bit i = port i may
/// execute it) plus optional occupancy of a serial divider resource.
struct Uop {
  std::uint8_t port_mask = 0;
  unsigned div_cycles = 0;    ///< integer divider occupancy
  unsigned fpdiv_cycles = 0;  ///< FP divider occupancy
};

/// Dispatch-engine parameters. Port roles follow the paper's table:
/// 0/1 generic compute (+ FP), 2/3 AGU + load data, 4 store data,
/// 5 INT ALU / LEA, 6 INT ALU + branch, 7 store AGU.
struct MachineModel {
  unsigned dispatch_width = 4;  ///< uops dispatched per cycle
  unsigned iterations = 100;    ///< analysed block repetitions

  std::uint8_t int_alu_ports = 0b0110'0011;   ///< {0,1,5,6}
  std::uint8_t int_mul_ports = 0b0000'0010;   ///< {1}
  std::uint8_t fp_ports = 0b0000'0011;        ///< {0,1}
  std::uint8_t load_ports = 0b0000'1100;      ///< {2,3}
  std::uint8_t store_data_ports = 0b0001'0000;  ///< {4}
  std::uint8_t store_agu_ports = 0b1000'0000;   ///< {7}
  std::uint8_t branch_ports = 0b0100'0001;    ///< {0,6}
  std::uint8_t div_port = 0b0000'0001;        ///< {0}

  // Instruction latencies (cycles) for the dependency-chain estimate.
  unsigned lat_alu = 1;
  unsigned lat_mul = 3;
  unsigned lat_div = 20;
  unsigned lat_fp = 4;
  unsigned lat_fpdiv = 14;
  unsigned lat_fpsqrt = 18;
  unsigned lat_load = 5;  ///< assumes cache hits, as LLVM-MCA does
  unsigned lat_store = 1;

  unsigned div_occupancy = 18;    ///< serial divider busy cycles per div
  unsigned fpdiv_occupancy = 12;  ///< FP divider busy cycles per div
  unsigned fpsqrt_occupancy = 18;
};

}  // namespace pulpc::mca
