// Figure 2 (left panel): classification accuracy of the decision tree as
// a function of the energy-waste tolerance, for the static AGG features
// and the dynamic features, against the naive "always-8" baseline. The
// paper's headline claims are checked as summary rows: the classifier
// must beat always-8 everywhere, AGG must exceed 75% at 5% tolerance and
// 85% at 8%, and the static-dynamic gap must stay below 10 points.
#include <cstdio>

#include "common.hpp"
#include "feat/features.hpp"
#include "pulpclass.hpp"

int main() {
  using namespace pulpc;
  std::printf("== Figure 2 (left): static vs dynamic vs always-8 ==\n");
  const pulpclass::Dataset ds = bench::dataset();
  const pulpclass::EvalOptions opt = bench::eval_options();
  std::printf("dataset: %zu samples, %u-fold CV x %u repetitions\n\n",
              ds.size(), opt.folds, opt.repeats);

  const pulpclass::EvalResult agg = pulpclass::evaluate(
      ds, feat::feature_set_columns(feat::FeatureSet::Agg), opt);
  const pulpclass::EvalResult dyn = pulpclass::evaluate(
      ds, feat::feature_set_columns(feat::FeatureSet::Dynamic), opt);
  const pulpclass::EvalResult always8 = pulpclass::evaluate_constant(ds, 8);

  std::printf("accuracy [%%] by energy tolerance threshold:\n");
  bench::print_series_header();
  bench::print_series("static (AGG)", agg);
  bench::print_series("dynamic", dyn);
  bench::print_series("always-8", always8);

  std::printf("\npaper-shape checks:\n");
  bool ok = true;
  bool beats = true;
  for (std::size_t i = 0; i < agg.accuracy.size(); ++i) {
    beats &= agg.accuracy[i] >= always8.accuracy[i];
  }
  std::printf("  [%s] AGG classifier >= always-8 at every tolerance\n",
              beats ? "PASS" : "FAIL");
  ok &= beats;

  const bool tol5 = agg.accuracy_at(0.05) > 0.75;
  std::printf(
      "  [%s] AGG accuracy @5%% tolerance > 75%%   (measured %.1f%%)\n",
      tol5 ? "PASS" : "FAIL", 100 * agg.accuracy_at(0.05));
  ok &= tol5;

  const bool tol8 = agg.accuracy_at(0.08) > 0.85;
  std::printf(
      "  [%s] AGG accuracy @8%% tolerance > 85%%   (measured %.1f%%)\n",
      tol8 ? "PASS" : "FAIL", 100 * agg.accuracy_at(0.08));
  ok &= tol8;

  double max_gap = 0;
  for (std::size_t i = 0; i < agg.accuracy.size(); ++i) {
    max_gap = std::max(max_gap, dyn.accuracy[i] - agg.accuracy[i]);
  }
  const bool gap = max_gap < 0.10;
  std::printf(
      "  [%s] dynamic-static gap < 10 points      (measured %.1f)\n",
      gap ? "PASS" : "FAIL", 100 * max_gap);
  ok &= gap;

  std::printf("\nresult: %s\n", ok ? "all shape checks PASS" : "CHECK FAILED");
  return ok ? 0 : 1;
}
