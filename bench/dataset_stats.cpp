// Dataset statistics (paper section IV-B): 448 samples from 59 kernels in
// three suites, the minimum-energy label distribution over the 8 classes,
// and the class-unbalance structure the paper reports (the "8 cores"
// class is by far the most frequent; on the authors' silicon it holds
// 34.8% of the samples).
#include <cstdio>

#include "common.hpp"
#include "kernels/registry.hpp"

int main() {
  using namespace pulpc;
  std::printf("== Dataset statistics (section IV-B) ==\n");
  const ml::Dataset ds = bench::dataset();

  std::size_t poly = 0;
  std::size_t utdsp = 0;
  std::size_t custom = 0;
  std::size_t i32 = 0;
  std::size_t f32 = 0;
  for (const ml::Sample& s : ds.samples()) {
    if (s.suite == "polybench") ++poly;
    if (s.suite == "utdsp") ++utdsp;
    if (s.suite == "custom") ++custom;
    if (s.dtype == kir::DType::I32) ++i32;
    if (s.dtype == kir::DType::F32) ++f32;
  }
  std::printf("samples: %zu  (polybench %zu, utdsp %zu, custom %zu)\n",
              ds.size(), poly, utdsp, custom);
  std::printf("element types: i32 %zu, f32 %zu\n", i32, f32);
  std::printf("distinct kernels: %zu; problem sizes:", kernels::all_kernels().size());
  for (const std::uint32_t s : kernels::dataset_sizes()) {
    std::printf(" %u", s);
  }
  std::printf(" bytes\n\n");

  const auto hist = ds.label_histogram(8);
  std::printf("minimum-energy label distribution:\n");
  std::printf("  %-6s %-8s %-7s %s\n", "cores", "samples", "share", "");
  std::size_t mode = 1;
  for (int k = 1; k <= 8; ++k) {
    const double share = 100.0 * double(hist[k]) / double(ds.size());
    std::printf("  %-6d %-8zu %5.1f%%  ", k, hist[k], share);
    for (int b = 0; b < int(share / 2); ++b) std::printf("#");
    std::printf("\n");
    if (hist[k] > hist[mode]) mode = std::size_t(k);
  }

  std::printf("\npaper-shape checks:\n");
  bool ok = true;
  const bool count_ok = ds.size() == 448;
  std::printf("  [%s] 448 samples as in the paper\n",
              count_ok ? "PASS" : "FAIL");
  ok &= count_ok;

  const bool mode8 = mode == 8;
  std::printf("  [%s] class '8' is the most frequent label (%.1f%%; the "
              "paper reports 34.8%% on silicon)\n",
              mode8 ? "PASS" : "FAIL",
              100.0 * double(hist[8]) / double(ds.size()));
  ok &= mode8;

  std::size_t nonempty = 0;
  for (int k = 1; k <= 8; ++k) nonempty += hist[k] > 0 ? 1 : 0;
  const bool spread = nonempty >= 6;
  std::printf("  [%s] labels spread over >= 6 of the 8 classes (%zu)\n",
              spread ? "PASS" : "FAIL", nonempty);
  ok &= spread;

  std::printf("\nresult: %s\n", ok ? "all shape checks PASS" : "CHECK FAILED");
  return ok ? 0 : 1;
}
