// Shared plumbing for the benchmark harnesses that regenerate the
// paper's tables and figures. The expensive 448-sample dataset build is
// cached on disk (pulpclass_dataset.csv in the working directory, or
// PULPC_DATASET_CACHE) so the first harness pays it and the rest reuse
// it. PULPC_CV_REPS overrides the paper's 100 cross-validation
// repetitions for quicker runs.
#pragma once

#include <cstdio>
#include <string>

#include "core/classifier.hpp"
#include "core/env.hpp"
#include "core/pipeline.hpp"
#include "ml/cv.hpp"
#include "ml/metrics.hpp"

namespace pulpc::bench {

/// Load (or build + cache) the full 448-sample dataset with progress
/// reporting on stderr.
[[nodiscard]] inline ml::Dataset dataset() {
  return core::load_or_build_dataset({}, [](std::size_t d, std::size_t t) {
    if (d % 56 == 0 || d == t) {
      std::fprintf(stderr, "  building dataset: %zu/%zu samples\r", d, t);
      if (d == t) std::fprintf(stderr, "\n");
    }
  });
}

/// CV options following the paper's protocol (10-fold stratified, 100
/// repetitions), with the repetition count overridable via PULPC_CV_REPS.
[[nodiscard]] inline ml::EvalOptions eval_options() {
  ml::EvalOptions opt;
  opt.folds = 10;
  opt.repeats = core::env_or(0U, "PULPC_CV_REPS", 100U);
  return opt;
}

/// Print one accuracy-vs-tolerance series as a table row block.
inline void print_series(const char* name, const ml::EvalResult& res) {
  std::printf("%-14s", name);
  for (std::size_t i = 0; i < res.tolerances.size(); i += 2) {
    std::printf(" %5.1f", 100.0 * res.accuracy[i]);
  }
  std::printf("\n");
}

inline void print_series_header() {
  std::printf("%-14s", "tolerance ->");
  const std::vector<double> t = ml::default_tolerances();
  for (std::size_t i = 0; i < t.size(); i += 2) {
    std::printf(" %4.0f%%", 100.0 * t[i]);
  }
  std::printf("\n");
}

}  // namespace pulpc::bench
