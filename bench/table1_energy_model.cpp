// Table I: the PULP energy model. The paper derives its constants by
// running synthetic benchmarks that each contain a single class of
// instructions and integrating the measured power. This harness repeats
// that methodology on the simulator: for every opcode class it runs two
// single-class synthetic benchmarks of different lengths, takes the
// marginal energy per operation, and checks it against the value
// predicted from the Table I rows (opcode energy + cycle-proportional
// floor). Exact agreement shows the energy integration is faithful to
// the published model.
#include <cmath>
#include <cstdio>
#include <vector>

#include "energy/model.hpp"
#include "sim/cluster.hpp"

namespace {

using namespace pulpc;
using kir::Instr;
using kir::MemSpace;
using kir::Op;

constexpr std::uint32_t kTcdm = 0x1000'0000;
constexpr std::uint32_t kL2 = 0x1C00'0000;

Instr ins(Op op, std::uint8_t rd = 0, std::uint8_t rs1 = 0,
          std::uint8_t rs2 = 0, std::int32_t imm = 0,
          MemSpace mem = MemSpace::None) {
  return Instr{op, rd, rs1, rs2, imm, mem};
}

/// Synthetic single-class benchmark: `iters` loop iterations of 8
/// identical payload instructions.
kir::Program synthetic(const Instr& payload, int iters) {
  kir::Program p;
  p.name = "synthetic";
  p.buffers.push_back(kir::BufferInfo{"m", kir::DType::I32, MemSpace::Tcdm,
                                      kTcdm, 64, kir::BufInit::Zero});
  p.buffers.push_back(kir::BufferInfo{"l2m", kir::DType::I32, MemSpace::L2,
                                      kL2, 64, kir::BufInit::Zero});
  p.code.push_back(ins(Op::MarkEnter));                       // 0
  p.code.push_back(ins(Op::Li, 10, 0, 0, std::int32_t(kTcdm)));
  p.code.push_back(ins(Op::Li, 11, 0, 0, std::int32_t(kL2)));
  p.code.push_back(ins(Op::Li, 2, 0, 0, 0));
  p.code.push_back(ins(Op::Li, 3, 0, 0, iters));
  const auto loop_head = static_cast<std::int32_t>(p.code.size());
  for (int u = 0; u < 8; ++u) p.code.push_back(payload);
  p.code.push_back(ins(Op::AddI, 2, 2, 0, 1));
  p.code.push_back(ins(Op::Blt, 0, 2, 3, loop_head));
  p.code.push_back(ins(Op::MarkExit));
  p.code.push_back(ins(Op::Halt));
  return p;
}

struct Measurement {
  double marginal_per_op = 0;   // fJ, measured from two run lengths
  double marginal_cycles = 0;   // cycles per op
};

Measurement measure(const Instr& payload) {
  sim::Cluster cl;
  const auto run = [&](int iters) {
    cl.load(synthetic(payload, iters));
    const sim::RunResult r = cl.run(1);
    if (!r.ok) {
      std::fprintf(stderr, "synthetic run failed: %s\n", r.error.c_str());
      std::exit(1);
    }
    return std::pair{energy::total_energy_fj(r.stats),
                     double(r.stats.region_cycles())};
  };
  const auto [e1, c1] = run(256);
  const auto [e2, c2] = run(512);
  Measurement m;
  m.marginal_per_op = (e2 - e1) / (256.0 * 8.0);
  m.marginal_cycles = (c2 - c1) / (256.0 * 8.0);
  return m;
}

/// Energy floor of one cluster cycle with a single running core doing no
/// memory accesses (leakage + idle of every component + the running
/// core's interconnect toggle), straight from the Table I rows.
double cycle_floor(const energy::EnergyModel& m) {
  return 8 * m.pe_leakage + 7 * m.pe_cg + 4 * (m.fpu_leakage + m.fpu_idle) +
         16 * (m.l1_leakage + m.l1_idle) + 32 * (m.l2_leakage + m.l2_idle) +
         m.icache_leakage + m.dma_leakage + m.dma_idle + m.other_leakage +
         m.other_active;
}

}  // namespace

int main() {
  const energy::EnergyModel m;
  std::printf("== Table I: PULP energy model [fJ] ==\n");
  std::printf("%-22s %8s    %-18s %8s\n", "operating region", "energy",
              "operating region", "energy");
  std::printf("%-22s %8.0f    %-18s %8.0f\n", "PE leakage", m.pe_leakage,
              "L1 bank leakage", m.l1_leakage);
  std::printf("%-22s %8.0f    %-18s %8.0f\n", "PE nop", m.pe_nop,
              "L1 bank read", m.l1_read);
  std::printf("%-22s %8.0f    %-18s %8.0f\n", "PE alu", m.pe_alu,
              "L1 bank write", m.l1_write);
  std::printf("%-22s %8.0f    %-18s %8.0f\n", "PE fp", m.pe_fp,
              "L1 bank idle", m.l1_idle);
  std::printf("%-22s %8.0f    %-18s %8.0f\n", "PE l1", m.pe_l1,
              "L2 bank leakage", m.l2_leakage);
  std::printf("%-22s %8.0f    %-18s %8.0f\n", "PE l2", m.pe_l2,
              "L2 bank read", m.l2_read);
  std::printf("%-22s %8.0f    %-18s %8.0f\n", "PE clock-gated", m.pe_cg,
              "L2 bank write", m.l2_write);
  std::printf("%-22s %8.0f    %-18s %8.0f\n", "FPU leakage", m.fpu_leakage,
              "L2 bank idle", m.l2_idle);
  std::printf("%-22s %8.0f    %-18s %8.0f\n", "FPU operative",
              m.fpu_operative, "icache leakage", m.icache_leakage);
  std::printf("%-22s %8.0f    %-18s %8.0f\n", "FPU idle", m.fpu_idle,
              "icache use", m.icache_use);
  std::printf("%-22s %8.0f    %-18s %8.0f\n", "other leakage",
              m.other_leakage, "icache refill", m.icache_refill);
  std::printf("%-22s %8.0f    %-18s %8.0f\n", "other active",
              m.other_active, "DMA transfer", m.dma_transfer);

  std::printf(
      "\n== per-class marginal energy from synthetic single-class "
      "benchmarks ==\n");
  const double floor = cycle_floor(m);
  std::printf("(cycle floor: %.0f fJ/cycle; every issued op also pays %0.f "
              "fJ of icache fetch)\n\n",
              floor, m.icache_use);

  struct Case {
    const char* name;
    Instr payload;
    double op_energy;  // Table I energy of one op (with its icache fetch)
    double op_cycles;  // cycles the op occupies the core
  };
  const std::vector<Case> cases = {
      {"nop", ins(Op::Nop), m.pe_nop + m.icache_use, 1},
      {"alu (add)", ins(Op::Add, 4, 4, 5), m.pe_alu + m.icache_use, 1},
      {"alu (mul)", ins(Op::Mul, 4, 4, 5), m.pe_alu + m.icache_use, 1},
      {"fp (fadd)", ins(Op::FAdd, 4, 4, 5),
       m.pe_fp + m.fpu_operative + m.icache_use, 1},
      {"div", ins(Op::Div, 4, 4, 5), 12 * m.pe_alu + m.icache_use, 12},
      {"fp div", ins(Op::FDiv, 4, 4, 5),
       10 * (m.pe_fp + m.fpu_operative) + m.icache_use, 10},
      {"l1 load", ins(Op::Lw, 4, 10, 0, 0, MemSpace::Tcdm),
       m.pe_l1 + m.l1_read - m.l1_idle + m.icache_use, 1},
      {"l1 store", ins(Op::Sw, 0, 10, 4, 0, MemSpace::Tcdm),
       m.pe_l1 + m.l1_write - m.l1_idle + m.icache_use, 1},
      {"l2 load", ins(Op::Lw, 4, 11, 0, 0, MemSpace::L2),
       15 * m.pe_l2 + m.l2_read - m.l2_idle + m.icache_use, 15},
  };

  // Per 8 payload ops the loop adds addi + taken blt + a bubble cycle.
  const double loop_overhead =
      (2 * (m.pe_alu + m.icache_use) + m.pe_nop + 3 * floor) / 8.0;

  std::printf("%-12s %14s %14s %12s %10s %8s\n", "class", "measured[fJ]",
              "expected[fJ]", "vs nop[fJ]", "cyc/op", "match");
  bool ok = true;
  double nop_measured = 0;
  for (const Case& c : cases) {
    const Measurement meas = measure(c.payload);
    const double expected =
        c.op_energy + c.op_cycles * floor + loop_overhead;
    if (std::string(c.name) == "nop") nop_measured = meas.marginal_per_op;
    const bool match =
        std::abs(meas.marginal_per_op - expected) < 1e-6 * expected + 1.0;
    ok &= match;
    std::printf("%-12s %14.1f %14.1f %12.1f %10.2f %8s\n", c.name,
                meas.marginal_per_op, expected,
                meas.marginal_per_op - nop_measured, meas.marginal_cycles,
                match ? "PASS" : "FAIL");
  }
  std::printf(
      "\nThe 'vs nop' column recovers the Table I opcode-class deltas\n"
      "(alu-nop = %.0f fJ, fp-nop = %.0f fJ, l1read-nop = %.0f fJ)\n",
      m.pe_alu - m.pe_nop, m.pe_fp + m.fpu_operative - m.pe_nop,
      m.pe_l1 + m.l1_read - m.l1_idle - m.pe_nop);
  std::printf("\nresult: %s\n",
              ok ? "energy integration matches Table I" : "CHECK FAILED");
  return ok ? 0 : 1;
}
