// Ablation: compiler optimisation level. The paper extracts static
// features from the straightforwardly-lowered IR (-O0-style); how does
// an optimising backend (LICM + value numbering + DCE over the same KIR)
// change the picture? This harness rebuilds a slice of the dataset from
// optimised programs and reports:
//   * how much energy the optimiser saves outright,
//   * how often the minimum-energy core count moves,
//   * how far the static features drift (why classifiers must be trained
//     at the optimisation level they will be deployed at).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/pipeline.hpp"
#include "dsl/lower.hpp"
#include "feat/features.hpp"
#include "kir/opt.hpp"
#include "kernels/registry.hpp"
#include "ml/metrics.hpp"
#include "ml/tree.hpp"

int main() {
  using namespace pulpc;
  std::printf("== Ablation: -O0 vs optimised lowering ==\n");
  std::printf("(59 kernels, one dtype each, 8 KiB size)\n\n");

  std::vector<ml::Sample> base_s;
  std::vector<ml::Sample> opt_s;
  std::size_t total_hoisted = 0;
  std::size_t total_reused = 0;
  for (const kernels::KernelInfo& info : kernels::all_kernels()) {
    const kir::DType dt = info.supports(kir::DType::I32) ? kir::DType::I32
                                                         : kir::DType::F32;
    const core::SampleConfig cfg{info.name, dt, 8192};
    const kir::Program prog = dsl::lower(info.factory(dt, 8192));
    kir::OptStats st;
    const kir::Program optimised = kir::optimize(prog, {}, &st);
    total_hoisted += st.hoisted;
    total_reused += st.values_reused;
    base_s.push_back(
        core::build_sample_from_program(prog, cfg, info.suite));
    opt_s.push_back(
        core::build_sample_from_program(optimised, cfg, info.suite));
  }

  double saved_sum = 0;
  double saved_max = 0;
  std::size_t label_moves = 0;
  for (std::size_t i = 0; i < base_s.size(); ++i) {
    const double eb =
        *std::min_element(base_s[i].energy.begin(), base_s[i].energy.end());
    const double eo =
        *std::min_element(opt_s[i].energy.begin(), opt_s[i].energy.end());
    const double saved = (eb - eo) / eb;
    saved_sum += saved;
    if (saved > saved_max) saved_max = saved;
    if (base_s[i].label != opt_s[i].label) ++label_moves;
  }
  std::printf("optimiser totals: %zu hoisted, %zu values reused\n",
              total_hoisted, total_reused);
  std::printf("energy saved at the per-kernel optimum: mean %.1f%%, max "
              "%.1f%%\n",
              100 * saved_sum / double(base_s.size()), 100 * saved_max);
  std::printf("minimum-energy core count moved on %zu/%zu kernels\n\n",
              label_moves, base_s.size());

  // Static-feature drift: mean relative change per feature.
  const std::vector<std::string>& names = feat::static_feature_names();
  std::printf("static-feature drift (mean |rel. change|, top 8):\n");
  std::vector<std::pair<double, std::string>> drift;
  for (std::size_t c = 0; c < names.size(); ++c) {
    double acc = 0;
    for (std::size_t i = 0; i < base_s.size(); ++i) {
      const double b = base_s[i].features[c];
      const double o = opt_s[i].features[c];
      if (std::abs(b) > 1e-9) acc += std::abs(o - b) / std::abs(b);
    }
    drift.emplace_back(acc / double(base_s.size()), names[c]);
  }
  std::sort(drift.rbegin(), drift.rend());
  for (std::size_t i = 0; i < 8; ++i) {
    std::printf("  %-10s %6.1f%%\n", drift[i].second.c_str(),
                100 * drift[i].first);
  }

  // Cross-level deployment: a tree trained on -O0 features/labels,
  // applied to the optimised programs.
  ml::Dataset ds_base(core::dataset_columns(8));
  ml::Dataset ds_opt(core::dataset_columns(8));
  for (const ml::Sample& s : base_s) ds_base.add(s);
  for (const ml::Sample& s : opt_s) ds_opt.add(s);
  const std::vector<std::string> cols =
      feat::feature_set_columns(feat::FeatureSet::AllStatic);
  ml::DecisionTree tree;
  tree.fit(ds_base.matrix(cols), ds_base.labels());
  const std::vector<int> cross = tree.predict(ds_opt.matrix(cols));
  const std::vector<int> self = tree.predict(ds_base.matrix(cols));
  const double acc_cross =
      ml::tolerance_accuracy(ds_opt.samples(), cross, 0.05);
  const double acc_self =
      ml::tolerance_accuracy(ds_base.samples(), self, 0.05);
  std::printf(
      "\n-O0-trained tree @5%% tolerance: %.1f%% on -O0 programs, %.1f%% "
      "on optimised programs\n",
      100 * acc_self, 100 * acc_cross);

  std::printf("\nchecks:\n");
  bool ok = true;
  const bool saves = saved_sum / double(base_s.size()) > 0.005;
  std::printf("  [%s] optimisation saves energy on average\n",
              saves ? "PASS" : "FAIL");
  ok &= saves;
  const bool stable = acc_cross >= 0.5;
  std::printf(
      "  [%s] the -O0-trained classifier remains usable on optimised "
      "code (>50%% @5%%)\n",
      stable ? "PASS" : "FAIL");
  ok &= stable;
  std::printf("\nresult: %s\n", ok ? "all checks PASS" : "CHECK FAILED");
  return ok ? 0 : 1;
}
