// Paper claim (ii): "the energy classification problem is not a trivial
// extension of performance or speed-up classification". This harness
// quantifies the claim on the dataset: how often does the fastest core
// count differ from the most energy-efficient one, how much energy does
// picking-for-speed waste, and how much worse is a tree trained on
// speed labels when judged on energy labels?
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "feat/features.hpp"
#include "ml/tree.hpp"

int main() {
  using namespace pulpc;
  std::printf("== Claim: energy labels != performance labels ==\n");
  const ml::Dataset ds = bench::dataset();

  // Per-sample fastest configuration from the cycle vectors.
  std::vector<int> speed_labels;
  std::size_t differ = 0;
  double waste_sum = 0;
  double waste_max = 0;
  for (const ml::Sample& s : ds.samples()) {
    const auto fastest =
        std::min_element(s.cycles.begin(), s.cycles.end()) - s.cycles.begin();
    const int fast_label = int(fastest) + 1;
    speed_labels.push_back(fast_label);
    if (fast_label != s.label) ++differ;
    const double waste = ml::energy_waste(s, fast_label);
    waste_sum += waste;
    waste_max = std::max(waste_max, waste);
  }
  const double differ_pct = 100.0 * double(differ) / double(ds.size());
  std::printf(
      "fastest-config label differs from min-energy label on %zu/%zu "
      "samples (%.1f%%)\n",
      differ, ds.size(), differ_pct);
  std::printf(
      "picking the fastest config wastes %.2f%% energy on average "
      "(worst case %.1f%%)\n",
      100.0 * waste_sum / double(ds.size()), 100.0 * waste_max);

  // Train on speed labels, evaluate against energy labels.
  const std::vector<std::string> cols =
      feat::feature_set_columns(feat::FeatureSet::AllStatic);
  const ml::Matrix x = ds.matrix(cols);
  ml::DecisionTree speed_tree;
  speed_tree.fit(x, speed_labels);
  const std::vector<int> speed_preds = speed_tree.predict(x);
  ml::DecisionTree energy_tree;
  energy_tree.fit(x, ds.labels());
  const std::vector<int> energy_preds = energy_tree.predict(x);

  const double acc_speed_on_energy =
      ml::tolerance_accuracy(ds.samples(), speed_preds, 0.0);
  const double acc_energy_on_energy =
      ml::tolerance_accuracy(ds.samples(), energy_preds, 0.0);
  std::printf(
      "\ntree trained on SPEED labels, judged on energy optimum:  %.1f%%\n",
      100 * acc_speed_on_energy);
  std::printf(
      "tree trained on ENERGY labels, judged on energy optimum: %.1f%%\n",
      100 * acc_energy_on_energy);

  std::printf("\npaper-shape checks:\n");
  bool ok = true;
  const bool nontrivial = differ_pct > 10.0;
  std::printf(
      "  [%s] labels differ on >10%% of samples (energy is its own task)\n",
      nontrivial ? "PASS" : "FAIL");
  ok &= nontrivial;
  const bool gap = acc_energy_on_energy > acc_speed_on_energy + 0.05;
  std::printf(
      "  [%s] energy-trained tree beats speed-trained tree by >5 pts on "
      "energy labels\n",
      gap ? "PASS" : "FAIL");
  ok &= gap;

  std::printf("\nresult: %s\n", ok ? "all shape checks PASS" : "CHECK FAILED");
  return ok ? 0 : 1;
}
