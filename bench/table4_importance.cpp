// Table IV: the most relevant features by decision-tree importance,
// separately for the dynamic features (metric, core-count) and the
// static features. The paper finds PE_sleep at the extreme core counts
// dominating the dynamic ranking and avgws / F4 / F1 leading the static
// one.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "feat/features.hpp"

namespace {

using pulpc::ml::EvalResult;

std::vector<std::pair<std::string, double>> ranked(const EvalResult& res) {
  std::vector<std::pair<std::string, double>> out;
  for (std::size_t i = 0; i < res.columns.size(); ++i) {
    out.emplace_back(res.columns[i], res.importances[i]);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return out;
}

void print_top(const char* title,
               const std::vector<std::pair<std::string, double>>& r,
               std::size_t n) {
  std::printf("%s\n", title);
  std::printf("  %-18s %s\n", "feature", "importance");
  for (std::size_t i = 0; i < std::min(n, r.size()); ++i) {
    std::printf("  %-18s %5.1f %%\n", r[i].first.c_str(),
                100.0 * r[i].second);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace pulpc;
  std::printf("== Table IV: most relevant features ==\n");
  const ml::Dataset ds = bench::dataset();
  const ml::EvalOptions opt = bench::eval_options();

  const EvalResult dyn = ml::evaluate(
      ds, feat::feature_set_columns(feat::FeatureSet::Dynamic), opt);
  const EvalResult sta = ml::evaluate(
      ds, feat::feature_set_columns(feat::FeatureSet::AllStatic), opt);

  const auto dyn_rank = ranked(dyn);
  const auto sta_rank = ranked(sta);
  print_top("dynamic features (metric @ core count):", dyn_rank, 12);
  print_top("static features:", sta_rank, 8);

  std::printf("paper-shape checks:\n");
  bool ok = true;

  // PE_sleep at some core count is among the top dynamic features (the
  // paper: PE_sleep@8 and PE_sleep@2 lead the ranking).
  const bool sleep_top = std::any_of(
      dyn_rank.begin(), dyn_rank.begin() + 4, [](const auto& p) {
        return p.first.find("PE_sleep") != std::string::npos ||
               p.first.find("PE_idle") != std::string::npos;
      });
  std::printf(
      "  [%s] PE_sleep/PE_idle in the dynamic top-4 (clock-gating "
      "discriminates parallel behaviour)\n",
      sleep_top ? "PASS" : "FAIL");
  ok &= sleep_top;

  // avgws (== F3) and the AGG combinations lead the static ranking.
  const bool avgws_top = std::any_of(
      sta_rank.begin(), sta_rank.begin() + 3, [](const auto& p) {
        return p.first == "avgws" || p.first == "F3" || p.first == "F1" ||
               p.first == "F4";
      });
  std::printf("  [%s] avgws/F1/F3/F4 in the static top-3\n",
              avgws_top ? "PASS" : "FAIL");
  ok &= avgws_top;

  // At least one MCA fingerprint contributes measurable importance, as
  // in the paper's table (RP4, uOPSpc, RP7).
  double mca_total = 0;
  for (const auto& [name, imp] : sta_rank) {
    if (name == "uOPSpc" || name == "IPC" || name == "RBP" ||
        name.rfind("RP", 0) == 0) {
      mca_total += imp;
    }
  }
  const bool mca_used = mca_total > 0.02;
  std::printf(
      "  [%s] MCA fingerprints carry importance (total %.1f%%)\n",
      mca_used ? "PASS" : "FAIL", 100 * mca_total);
  ok &= mca_used;

  std::printf("\nresult: %s\n", ok ? "all shape checks PASS" : "CHECK FAILED");
  return ok ? 0 : 1;
}
