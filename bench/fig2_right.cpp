// Figure 2 (right panel): classification accuracy over the tolerance
// sweep for the different static feature sets — AGG, RAW+AGG, the
// machine-code-analyser fingerprints, all statics together, and the
// importance-pruned "optimised" set the paper reports (61% at 0%
// tolerance, ~79% at 5% on their testbed).
#include <cstdio>

#include "common.hpp"
#include "feat/features.hpp"
#include "pulpclass.hpp"

int main() {
  using namespace pulpc;
  std::printf("== Figure 2 (right): static feature sets ==\n");
  const pulpclass::Dataset ds = bench::dataset();
  const pulpclass::EvalOptions opt = bench::eval_options();
  std::printf("dataset: %zu samples, %u-fold CV x %u repetitions\n\n",
              ds.size(), opt.folds, opt.repeats);

  const auto run_set = [&](feat::FeatureSet set) {
    return pulpclass::evaluate(ds, feat::feature_set_columns(set), opt);
  };
  const pulpclass::EvalResult agg = run_set(feat::FeatureSet::Agg);
  const pulpclass::EvalResult raw_agg = run_set(feat::FeatureSet::RawAgg);
  const pulpclass::EvalResult mca = run_set(feat::FeatureSet::Mca);
  const pulpclass::EvalResult all = run_set(feat::FeatureSet::AllStatic);

  // The paper's "optimised" classifier: score features by importance and
  // prune the least informative ones.
  pulpclass::EvalOptions rank_opt = opt;
  rank_opt.repeats = std::min(opt.repeats, 10U);
  const std::vector<std::string> pruned =
      pulpclass::optimized_static_columns(ds, 8, rank_opt);
  const pulpclass::EvalResult optimised = pulpclass::evaluate(ds, pruned,
                                                              opt);

  std::printf("accuracy [%%] by energy tolerance threshold:\n");
  bench::print_series_header();
  bench::print_series("AGG", agg);
  bench::print_series("RAW+AGG", raw_agg);
  bench::print_series("MCA", mca);
  bench::print_series("ALL-STATIC", all);
  bench::print_series("OPTIMISED", optimised);

  std::printf("\noptimised feature set (importance-pruned):");
  for (const std::string& c : pruned) std::printf(" %s", c.c_str());
  std::printf("\n");

  std::printf("\npaper-shape checks:\n");
  bool ok = true;

  // All static families land in a coherent band at 0% tolerance
  // (the paper: "substantially coherent and approximately equal").
  const double band =
      std::max({agg.accuracy[0], raw_agg.accuracy[0], all.accuracy[0]}) -
      std::min({agg.accuracy[0], raw_agg.accuracy[0], all.accuracy[0]});
  const bool coherent = band < 0.12;
  std::printf(
      "  [%s] AGG/RAW+AGG/ALL coherent at 0%% tolerance (spread %.1f pts)\n",
      coherent ? "PASS" : "FAIL", 100 * band);
  ok &= coherent;

  // Tolerance rescues every set (accuracy rises substantially by 5%).
  bool rises = true;
  for (const pulpclass::EvalResult* r :
       {&agg, &raw_agg, &mca, &all, &optimised}) {
    rises &= r->accuracy_at(0.05) > r->accuracy_at(0.0);
  }
  std::printf("  [%s] accuracy grows with the tolerance for every set\n",
              rises ? "PASS" : "FAIL");
  ok &= rises;

  // The pruned classifier keeps (or improves) the full static accuracy.
  const bool pruned_ok =
      optimised.accuracy_at(0.0) >= all.accuracy_at(0.0) - 0.03;
  std::printf(
      "  [%s] optimised set within 3 pts of ALL-STATIC at 0%% "
      "(%.1f%% vs %.1f%%)\n",
      pruned_ok ? "PASS" : "FAIL", 100 * optimised.accuracy_at(0.0),
      100 * all.accuracy_at(0.0));
  ok &= pruned_ok;

  std::printf("\nresult: %s\n", ok ? "all shape checks PASS" : "CHECK FAILED");
  return ok ? 0 : 1;
}
