// Ablation: model choice. The paper uses a single decision tree for its
// interpretability and leaves stronger learners to future work; this
// harness quantifies what a bagged random forest buys over the tree on
// the same static features, and sweeps the tree depth to show where the
// paper's model saturates. Naive always-k baselines for every k complete
// the picture.
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "feat/features.hpp"
#include "ml/forest.hpp"
#include "ml/mlp.hpp"

namespace {

using namespace pulpc;

/// Repeated stratified CV for a random forest (mirrors ml::evaluate).
ml::EvalResult evaluate_forest(const ml::Dataset& ds,
                               const std::vector<std::string>& cols,
                               const ml::EvalOptions& opt,
                               const ml::ForestParams& fp) {
  ml::EvalResult res;
  res.columns = cols;
  res.tolerances = ml::default_tolerances();
  res.accuracy.assign(res.tolerances.size(), 0.0);
  res.accuracy_std.assign(res.tolerances.size(), 0.0);
  const ml::Matrix x = ds.matrix(cols);
  const std::vector<int> y = ds.labels();
  for (unsigned rep = 0; rep < opt.repeats; ++rep) {
    std::mt19937_64 rng(opt.seed + rep);
    const auto folds = ml::stratified_kfold(y, opt.folds, rng);
    std::vector<int> preds(ds.size(), 0);
    for (const auto& test : folds) {
      std::vector<char> is_test(ds.size(), 0);
      for (const std::size_t i : test) is_test[i] = 1;
      std::vector<std::size_t> train;
      for (std::size_t i = 0; i < ds.size(); ++i) {
        if (is_test[i] == 0) train.push_back(i);
      }
      ml::ForestParams params = fp;
      params.seed = rng();
      ml::RandomForest forest(params);
      forest.fit(x, y, train);
      for (const std::size_t i : test) {
        preds[i] = forest.predict(std::span(x.row(i), x.cols));
      }
    }
    for (std::size_t t = 0; t < res.tolerances.size(); ++t) {
      res.accuracy[t] +=
          ml::tolerance_accuracy(ds.samples(), preds, res.tolerances[t]) /
          opt.repeats;
    }
  }
  return res;
}

/// Single train/test split evaluation for the (slow) MLP.
std::pair<double, double> evaluate_mlp(const ml::Dataset& ds,
                                       const std::vector<std::string>& cols,
                                       const ml::MlpParams& mp) {
  const ml::Matrix x = ds.matrix(cols);
  const std::vector<int> y = ds.labels();
  std::mt19937_64 rng(7);
  const auto folds = ml::stratified_kfold(y, 5, rng);
  std::vector<int> preds(ds.size(), 0);
  for (const auto& test : folds) {
    std::vector<char> is_test(ds.size(), 0);
    for (const std::size_t i : test) is_test[i] = 1;
    std::vector<std::size_t> train;
    for (std::size_t i = 0; i < ds.size(); ++i) {
      if (is_test[i] == 0) train.push_back(i);
    }
    ml::MlpClassifier mlp(mp);
    mlp.fit(x, y, train);
    for (const std::size_t i : test) {
      preds[i] = mlp.predict(std::span(x.row(i), x.cols));
    }
  }
  return {ml::tolerance_accuracy(ds.samples(), preds, 0.0),
          ml::tolerance_accuracy(ds.samples(), preds, 0.05)};
}

}  // namespace

int main() {
  using namespace pulpc;
  std::printf("== Ablation: model choice on static features ==\n");
  const ml::Dataset ds = bench::dataset();
  ml::EvalOptions opt = bench::eval_options();
  // Forest CV costs ~50x a tree fit; scale the repetitions down.
  opt.repeats = std::max(1U, opt.repeats / 10);
  std::printf("dataset: %zu samples, %u-fold CV x %u repetitions\n\n",
              ds.size(), opt.folds, opt.repeats);

  const std::vector<std::string> cols =
      feat::feature_set_columns(feat::FeatureSet::AllStatic);

  const ml::EvalResult tree = ml::evaluate(ds, cols, opt);
  ml::ForestParams fp;
  fp.n_trees = 50;
  const ml::EvalResult forest = evaluate_forest(ds, cols, opt, fp);

  bench::print_series_header();
  bench::print_series("tree (paper)", tree);
  bench::print_series("forest x50", forest);
  for (const int k : {1, 4, 8}) {
    const ml::EvalResult base = ml::evaluate_constant(ds, k);
    char label[16];
    std::snprintf(label, sizeof label, "always-%d", k);
    bench::print_series(label, base);
  }

  // The paper's future-work model family: a small neural network.
  ml::MlpParams mp;
  mp.hidden = 48;
  mp.epochs = 250;
  const auto [mlp0, mlp5] = evaluate_mlp(ds, cols, mp);
  std::printf("%-14s %5.1f ... %5.1f   (5-fold CV x1, @0%% and @5%%)\n",
              "mlp 48h", 100 * mlp0, 100 * mlp5);

  std::printf("\ntree depth sweep (accuracy at 0%% / 5%% tolerance):\n");
  for (const int depth : {1, 2, 3, 4, 6, 8, 12, 16}) {
    ml::EvalOptions d_opt = opt;
    d_opt.tree.max_depth = depth;
    const ml::EvalResult r = ml::evaluate(ds, cols, d_opt);
    std::printf("  depth %-3d %5.1f%% / %5.1f%%\n", depth,
                100 * r.accuracy_at(0.0), 100 * r.accuracy_at(0.05));
  }

  const double gain = forest.accuracy_at(0.0) - tree.accuracy_at(0.0);
  std::printf(
      "\nforest gain over the paper's single tree at 0%% tolerance: "
      "%+.1f points\n",
      100 * gain);
  const bool ok = forest.accuracy_at(0.0) >= tree.accuracy_at(0.0) - 0.02;
  std::printf("result: %s\n",
              ok ? "forest >= tree (ensemble never hurts materially)"
                 : "CHECK FAILED");
  return ok ? 0 : 1;
}
