// Ablation: generalisation. The paper's 10-fold CV mixes samples of the
// same kernel (other sizes / the other element type) across folds, so the
// tree can partially memorise kernels. This harness measures the honest
// deployment settings:
//   * leave-one-kernel-out: every fold holds out ALL samples of one
//     kernel (the real "configure unseen source code" scenario),
//   * leave-one-suite-out: train on two suites, test on the third,
//   * cross-type: train on i32 samples only, test on f32,
//   * cross-size: train on three sizes, test on the held-out one.
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common.hpp"
#include "feat/features.hpp"
#include "ml/tree.hpp"

namespace {

using namespace pulpc;

struct Split {
  std::vector<std::size_t> train;
  std::vector<std::size_t> test;
};

/// Accuracy of a tree trained/tested on an explicit split, at tolerances
/// 0% and 5%.
std::pair<double, double> run_split(const ml::Dataset& ds,
                                    const ml::Matrix& x,
                                    const std::vector<int>& y,
                                    const Split& split) {
  if (split.train.empty() || split.test.empty()) return {0, 0};
  ml::DecisionTree tree;
  tree.fit(x, y, split.train);
  std::vector<int> preds;
  preds.reserve(split.test.size());
  for (const std::size_t i : split.test) {
    preds.push_back(tree.predict(std::span(x.row(i), x.cols)));
  }
  return {ml::tolerance_accuracy(ds.samples(), split.test, preds, 0.0),
          ml::tolerance_accuracy(ds.samples(), split.test, preds, 0.05)};
}

/// Average run_split over a family of splits, weighting by test size.
std::pair<double, double> run_group(
    const ml::Dataset& ds, const ml::Matrix& x, const std::vector<int>& y,
    const std::vector<Split>& splits) {
  double a0 = 0;
  double a5 = 0;
  std::size_t total = 0;
  for (const Split& s : splits) {
    const auto [t0, t5] = run_split(ds, x, y, s);
    a0 += t0 * double(s.test.size());
    a5 += t5 * double(s.test.size());
    total += s.test.size();
  }
  return {a0 / double(total), a5 / double(total)};
}

}  // namespace

int main() {
  std::printf("== Ablation: generalisation to unseen code ==\n");
  const ml::Dataset ds = bench::dataset();
  const std::vector<std::string> cols =
      feat::feature_set_columns(feat::FeatureSet::AllStatic);
  const ml::Matrix x = ds.matrix(cols);
  const std::vector<int> y = ds.labels();
  const auto& samples = ds.samples();

  // Baseline: the paper's mixed CV at matching effort.
  ml::EvalOptions opt = bench::eval_options();
  opt.repeats = std::min(opt.repeats, 20U);
  const ml::EvalResult mixed = ml::evaluate(ds, cols, opt);

  // Leave-one-kernel-out.
  std::map<std::string, std::vector<std::size_t>> by_kernel;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    by_kernel[samples[i].kernel].push_back(i);
  }
  std::vector<Split> loko;
  for (const auto& [kernel, test] : by_kernel) {
    Split s;
    s.test = test;
    for (std::size_t i = 0; i < samples.size(); ++i) {
      if (samples[i].kernel != kernel) s.train.push_back(i);
    }
    loko.push_back(std::move(s));
  }
  const auto [k0, k5] = run_group(ds, x, y, loko);

  // Leave-one-suite-out.
  std::vector<Split> loso;
  for (const std::string suite : {"polybench", "utdsp", "custom"}) {
    Split s;
    for (std::size_t i = 0; i < samples.size(); ++i) {
      (samples[i].suite == suite ? s.test : s.train).push_back(i);
    }
    loso.push_back(std::move(s));
  }
  const auto [s0, s5] = run_group(ds, x, y, loso);

  // Cross-type: i32 -> f32.
  Split xtype;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    (samples[i].dtype == kir::DType::F32 ? xtype.test : xtype.train)
        .push_back(i);
  }
  const auto [t0, t5] = run_split(ds, x, y, xtype);

  // Cross-size: hold out the largest problem size.
  Split xsize;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    (samples[i].size_bytes == 32768 ? xsize.test : xsize.train).push_back(i);
  }
  const auto [z0, z5] = run_split(ds, x, y, xsize);

  std::printf("\naccuracy at 0%% / 5%% energy tolerance:\n");
  std::printf("  %-26s %6.1f%% / %5.1f%%   (the paper's protocol)\n",
              "mixed 10-fold CV", 100 * mixed.accuracy_at(0.0),
              100 * mixed.accuracy_at(0.05));
  std::printf("  %-26s %6.1f%% / %5.1f%%\n", "leave-one-kernel-out",
              100 * k0, 100 * k5);
  std::printf("  %-26s %6.1f%% / %5.1f%%\n", "leave-one-suite-out",
              100 * s0, 100 * s5);
  std::printf("  %-26s %6.1f%% / %5.1f%%\n", "train i32 -> test f32",
              100 * t0, 100 * t5);
  std::printf("  %-26s %6.1f%% / %5.1f%%\n", "hold out 32 KiB size",
              100 * z0, 100 * z5);

  std::printf("\nchecks:\n");
  bool ok = true;
  const bool harder = k0 <= mixed.accuracy_at(0.0) + 1e-9;
  std::printf(
      "  [%s] unseen-kernel accuracy <= mixed-CV accuracy (memorisation "
      "gap: %.1f points)\n",
      harder ? "PASS" : "FAIL",
      100 * (mixed.accuracy_at(0.0) - k0));
  ok &= harder;
  // Even on fully unseen kernels the exact-optimum accuracy must stay
  // well above the always-8 base rate, or the method has no deployment
  // value. (At 5% tolerance always-8 becomes competitive on this
  // substrate because most parallel kernels sit within a few percent of
  // their optimum at 8 cores; the printed numbers document that.)
  const ml::EvalResult always8 = ml::evaluate_constant(ds, 8);
  const bool useful = k0 > always8.accuracy_at(0.0) + 0.05;
  std::printf(
      "  [%s] unseen-kernel @0%% accuracy (%.1f%%) beats always-8 "
      "(%.1f%%) by >5 points\n",
      useful ? "PASS" : "FAIL", 100 * k0, 100 * always8.accuracy_at(0.0));
  std::printf(
      "  [info] at 5%% tolerance on unseen kernels: classifier %.1f%% vs "
      "always-8 %.1f%%\n",
      100 * k5, 100 * always8.accuracy_at(0.05));
  ok &= useful;

  std::printf("\nresult: %s\n", ok ? "all checks PASS" : "CHECK FAILED");
  return ok ? 0 : 1;
}
