// Table II: the static features. Prints the RAW/AGG/MCA feature
// definitions with summary statistics over the whole dataset, plus a few
// example kernels, demonstrating the compile-time extraction path.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "dsl/lower.hpp"
#include "feat/features.hpp"
#include "kernels/registry.hpp"

namespace {

struct Summary {
  double min = 0;
  double median = 0;
  double max = 0;
};

Summary summarise(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return {v.front(), v[v.size() / 2], v.back()};
}

}  // namespace

int main() {
  using namespace pulpc;
  std::printf("== Table II: static features over the dataset ==\n");
  const ml::Dataset ds = bench::dataset();
  const std::vector<std::string>& names = feat::static_feature_names();

  std::printf("%zu samples; per-feature distribution:\n", ds.size());
  std::printf("  %-10s %12s %12s %12s\n", "feature", "min", "median", "max");
  bool ok = true;
  for (std::size_t c = 0; c < names.size(); ++c) {
    std::vector<double> col;
    col.reserve(ds.size());
    for (const ml::Sample& s : ds.samples()) col.push_back(s.features[c]);
    const Summary sm = summarise(col);
    std::printf("  %-10s %12.4g %12.4g %12.4g\n", names[c].c_str(), sm.min,
                sm.median, sm.max);
    ok &= std::isfinite(sm.min) && std::isfinite(sm.max);
    // Constant features carry no information; every static feature must
    // vary across the dataset.
    if (sm.max - sm.min <= 0) {
      std::printf("      ^ WARNING: feature is constant\n");
      ok = false;
    }
  }

  std::printf("\nexample kernels (compile-time extraction):\n");
  std::printf("  %-18s %10s %10s %10s %8s %6s %6s\n", "kernel", "op",
              "tcdm", "transfer", "avgws", "IPC", "RPDiv");
  for (const char* name : {"gemm", "fir", "trisolv", "div_chain",
                           "histogram", "fft"}) {
    const kernels::KernelInfo& info = kernels::kernel_info(name);
    const kir::DType dt = info.supports(kir::DType::F32) ? kir::DType::F32
                                                         : kir::DType::I32;
    const feat::StaticFeatures f =
        feat::extract_static(dsl::lower(info.factory(dt, 8192)));
    std::printf("  %-18s %10.0f %10.0f %10.0f %8.0f %6.2f %6.2f\n", name,
                f.op, f.tcdm, f.transfer, f.avgws, f.ipc, f.rp_div);
  }

  std::printf("\nresult: %s\n",
              ok ? "all 20 static features populated and varying"
                 : "CHECK FAILED");
  return ok ? 0 : 1;
}
