// Micro-benchmarks (google-benchmark) for the expensive building blocks:
// simulator stepping throughput, trace parsing, static feature
// extraction, MCA analysis and decision-tree training.
#include <benchmark/benchmark.h>

#include <random>
#include <sstream>

#include "dsl/lower.hpp"
#include "feat/features.hpp"
#include "kernels/registry.hpp"
#include "mca/analyzer.hpp"
#include "ml/tree.hpp"
#include "sim/cluster.hpp"
#include "trace/listeners.hpp"
#include "trace/sinks.hpp"

namespace {

using namespace pulpc;

void BM_LowerKernel(benchmark::State& state) {
  const dsl::KernelSpec spec =
      kernels::make_kernel("gemm", kir::DType::F32, 8192);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsl::lower(spec));
  }
}
BENCHMARK(BM_LowerKernel);

void BM_SimulateGemm(benchmark::State& state) {
  const auto cores = static_cast<unsigned>(state.range(0));
  const kir::Program prog =
      dsl::lower(kernels::make_kernel("gemm", kir::DType::I32, 8192));
  sim::Cluster cluster;
  cluster.load(prog);
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    const sim::RunResult r = cluster.run(cores);
    cycles += r.stats.total_cycles;
    benchmark::DoNotOptimize(r.stats.total_cycles);
  }
  state.counters["sim_cycles/s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulateGemm)->Arg(1)->Arg(8);

void BM_TraceEmitAndParse(benchmark::State& state) {
  const kir::Program prog =
      dsl::lower(kernels::make_kernel("fir", kir::DType::I32, 512));
  sim::Cluster cluster;
  cluster.load(prog);
  std::ostringstream text;
  trace::TextTraceWriter writer(text);
  (void)cluster.run(2, &writer);
  const std::string payload = text.str();
  for (auto _ : state) {
    trace::TraceAnalyser analyser;
    trace::PulpListeners listeners;
    listeners.register_on(analyser);
    std::istringstream in(payload);
    benchmark::DoNotOptimize(analyser.analyse(in));
  }
  state.counters["trace_bytes"] =
      static_cast<double>(payload.size());
}
BENCHMARK(BM_TraceEmitAndParse);

void BM_StaticFeatures(benchmark::State& state) {
  const kir::Program prog =
      dsl::lower(kernels::make_kernel("conv2d", kir::DType::F32, 8192));
  for (auto _ : state) {
    benchmark::DoNotOptimize(feat::extract_static(prog));
  }
}
BENCHMARK(BM_StaticFeatures);

void BM_McaAnalyze(benchmark::State& state) {
  const kir::Program prog =
      dsl::lower(kernels::make_kernel("fft", kir::DType::F32, 8192));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mca::analyze_program(prog));
  }
}
BENCHMARK(BM_McaAnalyze);

void BM_TreeFit(benchmark::State& state) {
  const auto cols = static_cast<std::size_t>(state.range(0));
  std::mt19937 rng(1);
  std::uniform_real_distribution<double> u(0, 1);
  ml::Matrix x;
  x.rows = 448;
  x.cols = cols;
  std::vector<int> y;
  for (std::size_t r = 0; r < x.rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) x.data.push_back(u(rng));
    y.push_back(1 + int(u(rng) * 8));
  }
  for (auto _ : state) {
    ml::DecisionTree tree;
    tree.fit(x, y);
    benchmark::DoNotOptimize(tree.node_count());
  }
}
BENCHMARK(BM_TreeFit)->Arg(3)->Arg(20)->Arg(80);

}  // namespace

BENCHMARK_MAIN();
