// Micro-benchmarks (google-benchmark) for the expensive building blocks:
// simulator stepping throughput, trace parsing, static feature
// extraction, MCA analysis, decision-tree training, and the serial vs.
// parallel wall time of the two thread-pool hot paths (dataset build,
// repeated CV).
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <random>
#include <sstream>

#include "core/artifacts.hpp"
#include "core/pipeline.hpp"
#include "dsl/builder.hpp"
#include "dsl/lower.hpp"
#include "feat/features.hpp"
#include "kernels/registry.hpp"
#include "kir/costmodel.hpp"
#include "mca/analyzer.hpp"
#include "ml/cv.hpp"
#include "ml/flat.hpp"
#include "ml/forest.hpp"
#include "ml/tree.hpp"
#include "serve/service.hpp"
#include "sim/cluster.hpp"
#include "trace/listeners.hpp"
#include "trace/sinks.hpp"

namespace {

using namespace pulpc;

void BM_LowerKernel(benchmark::State& state) {
  const dsl::KernelSpec spec =
      kernels::make_kernel("gemm", kir::DType::F32, 8192);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsl::lower(spec));
  }
}
BENCHMARK(BM_LowerKernel);

void BM_SimulateGemm(benchmark::State& state) {
  const auto cores = static_cast<unsigned>(state.range(0));
  const kir::Program prog =
      dsl::lower(kernels::make_kernel("gemm", kir::DType::I32, 8192));
  sim::Cluster cluster;
  cluster.load(prog);
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    const sim::RunResult r = cluster.run(cores);
    cycles += r.stats.total_cycles;
    benchmark::DoNotOptimize(r.stats.total_cycles);
  }
  state.counters["sim_cycles/s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulateGemm)->Arg(1)->Arg(8);

// ---- event-driven fast-forward ------------------------------------------
// A/B of SimOptions::fast_forward on kernels dominated by the idle
// stretches it targets (DMA transfers, barrier waits). These are built
// directly through the DSL rather than taken from the registry: at
// registry problem sizes the per-run cost is dominated by re-zeroing the
// 576 KiB memory image in reset(), which fast-forward cannot touch, so a
// bench kernel needs long runs over a small resident set. Stats are
// byte-identical either way (tests/test_sim_fastpath.cpp); compare the
// sim_cycles/s counters for the speedup. The acceptance target is >= 2x
// on a DMA- or barrier-dominated kernel; dct rides along as a mixed
// registry workload.

kir::Program bench_dma_stream() {
  dsl::KernelBuilder k("bench_dma_stream", "bench", dsl::DType::I32, 32768);
  const dsl::Buf big =
      k.buffer("big", 8192, dsl::InitKind::Random, dsl::MemSpace::L2);
  const dsl::Buf buf = k.buffer("buf", 8192, dsl::InitKind::Zero);
  k.for_("r", k.ic(0), k.ic(16), [&](dsl::Val) {
    k.dma_copy(buf, big, 8192);
    k.dma_wait();
  });
  return dsl::lower(k.build());
}

kir::Program bench_barrier_storm() {
  dsl::KernelBuilder k("bench_barrier_storm", "bench", dsl::DType::I32,
                       4096);
  (void)k.buffer("x", 8, dsl::InitKind::Zero);
  k.for_("r", k.ic(0), k.ic(4096), [&](dsl::Val) { k.barrier(); });
  return dsl::lower(k.build());
}

void sim_fast_forward_case(benchmark::State& state, const kir::Program& prog,
                           unsigned cores, bool fast_forward) {
  sim::SimOptions opt;
  opt.fast_forward = fast_forward;
  sim::Cluster cluster({}, opt);
  cluster.load(prog);
  std::uint64_t cycles = 0;
  std::uint64_t ff_cycles = 0;
  for (auto _ : state) {
    const sim::RunResult r = cluster.run(cores);
    cycles += r.stats.total_cycles;
    ff_cycles += r.ff_cycles;
    benchmark::DoNotOptimize(r.stats.total_cycles);
  }
  state.counters["sim_cycles/s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
  state.counters["ff_pct"] =
      cycles > 0 ? 100.0 * static_cast<double>(ff_cycles) /
                       static_cast<double>(cycles)
                 : 0.0;
}

void BM_SimFFDmaStream(benchmark::State& state) {
  static const kir::Program prog = bench_dma_stream();
  sim_fast_forward_case(state, prog, static_cast<unsigned>(state.range(0)),
                        state.range(1) != 0);
}
BENCHMARK(BM_SimFFDmaStream)
    ->ArgNames({"cores", "ff"})
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({8, 0})
    ->Args({8, 1});

void BM_SimFFBarrierStorm(benchmark::State& state) {
  static const kir::Program prog = bench_barrier_storm();
  sim_fast_forward_case(state, prog, static_cast<unsigned>(state.range(0)),
                        state.range(1) != 0);
}
BENCHMARK(BM_SimFFBarrierStorm)
    ->ArgNames({"cores", "ff"})
    ->Args({8, 0})
    ->Args({8, 1});

void BM_SimFFDct(benchmark::State& state) {
  static const kir::Program prog =
      dsl::lower(kernels::make_kernel("dct", kir::DType::I32, 32768));
  sim_fast_forward_case(state, prog, static_cast<unsigned>(state.range(0)),
                        state.range(1) != 0);
}
BENCHMARK(BM_SimFFDct)
    ->ArgNames({"cores", "ff"})
    ->Args({8, 0})
    ->Args({8, 1});

void BM_TraceEmitAndParse(benchmark::State& state) {
  const kir::Program prog =
      dsl::lower(kernels::make_kernel("fir", kir::DType::I32, 512));
  sim::Cluster cluster;
  cluster.load(prog);
  std::ostringstream text;
  trace::TextTraceWriter writer(text);
  (void)cluster.run(2, &writer);
  const std::string payload = text.str();
  for (auto _ : state) {
    trace::TraceAnalyser analyser;
    trace::PulpListeners listeners;
    listeners.register_on(analyser);
    std::istringstream in(payload);
    benchmark::DoNotOptimize(analyser.analyse(in));
  }
  state.counters["trace_bytes"] =
      static_cast<double>(payload.size());
}
BENCHMARK(BM_TraceEmitAndParse);

void BM_StaticFeatures(benchmark::State& state) {
  const kir::Program prog =
      dsl::lower(kernels::make_kernel("conv2d", kir::DType::F32, 8192));
  for (auto _ : state) {
    benchmark::DoNotOptimize(feat::extract_static(prog));
  }
}
BENCHMARK(BM_StaticFeatures);

void BM_McaAnalyze(benchmark::State& state) {
  const kir::Program prog =
      dsl::lower(kernels::make_kernel("fft", kir::DType::F32, 8192));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mca::analyze_program(prog));
  }
}
BENCHMARK(BM_McaAnalyze);

// The static cost analyzer prices all 8 core counts per call; compare
// against BM_SimulateGemm for the analyze-vs-simulate gap the
// analyze-soundness CI job asserts on (>= 100x over the registry).
void BM_AnalyzeCost(benchmark::State& state) {
  const kir::Program prog = dsl::lower(kernels::make_kernel(
      "gemm", kir::DType::I32, 8192));
  double tightness = 0;
  for (auto _ : state) {
    const kir::CostReport rep = kir::analyze_cost(prog);
    tightness = rep.config(8)->tightness();
    benchmark::DoNotOptimize(rep);
  }
  state.counters["tightness_n8"] = tightness;
}
BENCHMARK(BM_AnalyzeCost);

void BM_TreeFit(benchmark::State& state) {
  const auto cols = static_cast<std::size_t>(state.range(0));
  std::mt19937 rng(1);
  std::uniform_real_distribution<double> u(0, 1);
  ml::Matrix x;
  x.rows = 448;
  x.cols = cols;
  std::vector<int> y;
  for (std::size_t r = 0; r < x.rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) x.data.push_back(u(rng));
    y.push_back(1 + int(u(rng) * 8));
  }
  for (auto _ : state) {
    ml::DecisionTree tree;
    tree.fit(x, y);
    benchmark::DoNotOptimize(tree.node_count());
  }
}
BENCHMARK(BM_TreeFit)->Arg(3)->Arg(20)->Arg(80);

// Serial-vs-parallel wall time of build_dataset over a trimmed slice of
// the 448 paper configurations (Arg = worker threads). The outputs are
// byte-identical for every Arg; compare the real-time columns for the
// speedup (the acceptance target is >= 2x at 4 threads).
void BM_BuildDatasetThreads(benchmark::State& state) {
  core::BuildOptions opt;
  opt.threads = static_cast<unsigned>(state.range(0));
  const std::vector<core::SampleConfig> all = core::dataset_configs();
  std::vector<core::SampleConfig> configs;
  for (std::size_t i = 0; i < all.size() && configs.size() < 16; i += 29) {
    configs.push_back(all[i]);
  }
  std::size_t samples = 0;
  for (auto _ : state) {
    const ml::Dataset ds = core::build_dataset(configs, opt);
    samples += ds.size();
    benchmark::DoNotOptimize(ds.size());
  }
  state.counters["samples/s"] = benchmark::Counter(
      static_cast<double>(samples), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BuildDatasetThreads)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// ---- staged-pipeline timings -------------------------------------------
// The artifact store splits the dataset build into one expensive stage
// (Simulate) and cheap pure replays (Label + Featurize). These cases
// time each side in isolation over the same 8-sample slice so the
// speedup of "relabel instead of rebuild" is a number, not a claim.

std::vector<core::SampleConfig> stage_slice() {
  const std::vector<core::SampleConfig> all = core::dataset_configs();
  std::vector<core::SampleConfig> configs;
  for (std::size_t i = 0; i < all.size() && configs.size() < 8; i += 53) {
    configs.push_back(all[i]);
  }
  return configs;
}

// Simulate-only: populate_store into a fresh store every iteration —
// the cost the artifact store lets you pay once.
void BM_StageSimulateOnly(benchmark::State& state) {
  const std::vector<core::SampleConfig> configs = stage_slice();
  core::BuildOptions opt;
  opt.threads = 1;
  const std::string dir = "bench_artifacts_simulate";
  std::size_t runs = 0;
  for (auto _ : state) {
    std::filesystem::remove_all(dir);
    const core::ArtifactStore store(dir, opt.cluster);
    const core::StageReport r = core::populate_store(store, configs, opt);
    runs += r.simulated_runs;
    benchmark::DoNotOptimize(r.simulated_runs);
  }
  std::filesystem::remove_all(dir);
  state.counters["sim_runs/s"] = benchmark::Counter(
      static_cast<double>(runs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_StageSimulateOnly)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

core::StoreFormat bench_format(std::int64_t arg) {
  return arg != 0 ? core::StoreFormat::v2 : core::StoreFormat::v1;
}

// Relabel-only: rebuild the labelled dataset from a warm store — the
// per-energy-model-tweak cost after the one simulation pass. Arg picks
// the store backend (0 = v1 text files, 1 = v2 packed segments); the
// output CSV is byte-identical either way.
void BM_StageRelabelOnly(benchmark::State& state) {
  const core::StoreFormat fmt = bench_format(state.range(0));
  const std::vector<core::SampleConfig> configs = stage_slice();
  core::BuildOptions opt;
  opt.threads = 1;
  const std::string dir =
      std::string("bench_artifacts_relabel_") + core::to_string(fmt);
  std::filesystem::remove_all(dir);
  const core::ArtifactStore store(dir, opt.cluster, fmt);
  (void)core::populate_store(store, configs, opt);
  store.flush();
  std::size_t samples = 0;
  for (auto _ : state) {
    const ml::Dataset ds = core::relabel(store, configs, opt);
    samples += ds.size();
    benchmark::DoNotOptimize(ds.size());
  }
  std::filesystem::remove_all(dir);
  state.counters["samples/s"] = benchmark::Counter(
      static_cast<double>(samples), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_StageRelabelOnly)
    ->ArgNames({"v2"})
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// ---- artifact store backends --------------------------------------------
// v1 (one parsed text file per run) against v2 (packed page-aligned
// records in mmap'd segments) on the two operations the refactor
// targets: the full-registry integrity scan (`pulpclass cache verify`)
// and a cold open. The acceptance target is a >= 10x scan speedup for
// v2 over v1 on the same artifact population; CI extracts the ratio
// from BENCH_store.json. Replay byte-identity across backends is NOT
// what these measure — tests/test_store_v2.cpp proves it separately.

// Full integrity scan of a warm store: v1 re-parses every text file,
// v2 checksums mmap'd slots without parsing a single number.
void BM_StoreScan(benchmark::State& state) {
  const core::StoreFormat fmt = bench_format(state.range(0));
  const std::vector<core::SampleConfig> configs = stage_slice();
  core::BuildOptions opt;
  opt.threads = 1;
  const std::string dir =
      std::string("bench_store_scan_") + core::to_string(fmt);
  std::filesystem::remove_all(dir);
  const core::ArtifactStore store(dir, opt.cluster, fmt);
  (void)core::populate_store(store, configs, opt);
  store.flush();
  std::size_t artifacts = 0;
  for (auto _ : state) {
    const core::ArtifactStore::Info info = store.scan();
    artifacts += info.valid;
    benchmark::DoNotOptimize(info.valid);
  }
  std::filesystem::remove_all(dir);
  state.counters["artifacts/s"] = benchmark::Counter(
      static_cast<double>(artifacts), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_StoreScan)->ArgNames({"v2"})->Arg(0)->Arg(1)->UseRealTime();

// Cold start: open the store fresh and answer one membership probe —
// the serve-priming entry cost. v2 resolves through the mmap'd index
// (O(1) in the record count); v1 stats one file.
void BM_StoreColdStart(benchmark::State& state) {
  const core::StoreFormat fmt = bench_format(state.range(0));
  const std::vector<core::SampleConfig> configs = stage_slice();
  core::BuildOptions opt;
  opt.threads = 1;
  const std::string dir =
      std::string("bench_store_cold_") + core::to_string(fmt);
  std::filesystem::remove_all(dir);
  {
    const core::ArtifactStore writer(dir, opt.cluster, fmt);
    (void)core::populate_store(writer, configs, opt);
    writer.flush();
  }
  const core::SampleConfig probe = configs.front();
  std::size_t opens = 0;
  for (auto _ : state) {
    const core::ArtifactStore store(dir, opt.cluster, fmt);
    benchmark::DoNotOptimize(store.contains(probe, 1));
    ++opens;
  }
  std::filesystem::remove_all(dir);
  state.counters["opens/s"] = benchmark::Counter(
      static_cast<double>(opens), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_StoreColdStart)->ArgNames({"v2"})->Arg(0)->Arg(1)->UseRealTime();

// Label + Featurize only: the pure stages over in-memory counters, no
// store I/O — the floor relabel converges to.
void BM_StageLabelFeaturize(benchmark::State& state) {
  const core::SampleConfig cfg{"gemm", kir::DType::I32, 8192};
  const kir::Program prog = core::lower_sample(cfg);
  const std::vector<sim::RunStats> runs = core::simulate_sample(prog, cfg);
  for (auto _ : state) {
    const core::SampleLabel label = core::label_sample(runs);
    std::vector<double> features = core::featurize_sample(prog, runs);
    benchmark::DoNotOptimize(label.label);
    benchmark::DoNotOptimize(features.data());
  }
}
BENCHMARK(BM_StageLabelFeaturize);

// ---- prediction service -------------------------------------------------
// Cold vs cached predict latency and batched throughput through the
// serve::PredictionService. The acceptance target is a >= 10x speedup of
// a cache hit over a cold predict (the hit skips lowering and
// featurization and goes straight to the tree walk); CI extracts the
// ratio from BENCH_serve.json.

const core::EnergyClassifier& bench_classifier() {
  static const core::EnergyClassifier* clf = [] {
    ml::Dataset ds(core::dataset_columns(8));
    for (const char* name : {"memcpy", "alu_chain", "trisolv", "autocor"}) {
      ds.add(core::build_sample({name, kir::DType::I32, 512}));
    }
    auto* c = new core::EnergyClassifier();
    c->train(ds);
    return c;
  }();
  return *clf;
}

serve::Request bench_request() {
  serve::Request req;
  req.kernel = "gemm";
  req.dtype = kir::DType::I32;
  req.size_bytes = 8192;
  return req;
}

// Cold path: caching disabled, every predict lowers + featurizes.
void BM_PredictCold(benchmark::State& state) {
  serve::PredictionService::Options opt;
  opt.cache_capacity = 0;
  opt.threads = 1;
  opt.batch_linger = std::chrono::microseconds(0);
  serve::PredictionService svc(bench_classifier(), opt);
  const serve::Request req = bench_request();
  std::size_t n = 0;
  for (auto _ : state) {
    const serve::Result r = svc.predict(req);
    ++n;
    benchmark::DoNotOptimize(r.cores);
  }
  state.counters["requests/s"] = benchmark::Counter(
      static_cast<double>(n), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PredictCold)->UseRealTime();

// Warm path: same request against a warmed LRU — the row comes from the
// cache and only the tree walk runs.
void BM_PredictCached(benchmark::State& state) {
  serve::PredictionService::Options opt;
  opt.threads = 1;
  opt.batch_linger = std::chrono::microseconds(0);
  serve::PredictionService svc(bench_classifier(), opt);
  const serve::Request req = bench_request();
  (void)svc.predict(req);  // warm the cache
  std::size_t n = 0;
  for (auto _ : state) {
    const serve::Result r = svc.predict(req);
    ++n;
    benchmark::DoNotOptimize(r.cores);
  }
  state.counters["requests/s"] = benchmark::Counter(
      static_cast<double>(n), benchmark::Counter::kIsRate);
  state.counters["cache_hit"] = 1;
}
BENCHMARK(BM_PredictCached)->UseRealTime();

// Burst throughput: submit a burst of distinct cold requests and drain
// it — the micro-batcher coalesces them onto the featurization pool.
void BM_ServeBatch(benchmark::State& state) {
  const auto burst = static_cast<std::size_t>(state.range(0));
  serve::PredictionService::Options opt;
  opt.cache_capacity = 0;  // keep every request on the featurize path
  opt.max_batch = burst;
  serve::PredictionService svc(bench_classifier(), opt);
  const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const kernels::KernelInfo& k : kernels::all_kernels()) {
      if (k.supports(kir::DType::I32)) out.push_back(k.name);
    }
    return out;
  }();
  std::size_t n = 0;
  for (auto _ : state) {
    std::vector<std::future<serve::Result>> futures;
    futures.reserve(burst);
    for (std::size_t i = 0; i < burst; ++i) {
      serve::Request req;
      req.kernel = names[i % names.size()];
      req.dtype = kir::DType::I32;
      req.size_bytes = 1024;
      futures.push_back(svc.submit(std::move(req)));
    }
    for (std::future<serve::Result>& f : futures) {
      benchmark::DoNotOptimize(f.get().ok);
    }
    n += burst;
  }
  state.counters["requests/s"] = benchmark::Counter(
      static_cast<double>(n), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ServeBatch)->Arg(16)->UseRealTime();

// ---- flat inference engine ----------------------------------------------
// Node-chasing baseline vs the flattened branchless batch engine
// (ml/flat.hpp) on a synthetic model shaped like the paper's (448
// training rows, 20 static features, labels 1..8). The acceptance
// target is >= 10x single-thread predictions/s for the flat forest over
// the per-row node-chasing forest walk; CI extracts the ratio from
// BENCH_predict.json. Correctness is NOT what these measure —
// tests/test_flat_predict.cpp proves bit-identity separately.

struct PredictFixture {
  ml::Matrix train;
  std::vector<int> labels;
  ml::Matrix query;
  ml::DecisionTree tree;
  ml::RandomForest forest;
  ml::FlatTree flat_tree;
  ml::FlatForest flat_forest;
  ml::FlatTreeQuant quant_tree;
  ml::FlatForestQuant quant_forest;
};

const PredictFixture& predict_fixture() {
  static const PredictFixture* fx = [] {
    auto* f = new PredictFixture;
    std::mt19937 rng(1);
    std::uniform_real_distribution<double> u(0, 1);
    f->train.rows = 448;
    f->train.cols = 20;
    for (std::size_t i = 0; i < f->train.rows * f->train.cols; ++i) {
      f->train.data.push_back(u(rng));
    }
    for (std::size_t r = 0; r < f->train.rows; ++r) {
      f->labels.push_back(1 + int(u(rng) * 8));
    }
    f->query.rows = 4096;
    f->query.cols = 20;
    for (std::size_t i = 0; i < f->query.rows * f->query.cols; ++i) {
      f->query.data.push_back(u(rng));
    }
    f->tree.fit(f->train, f->labels);
    ml::ForestParams fp;
    fp.n_trees = 50;
    f->forest = ml::RandomForest(fp);
    f->forest.fit(f->train, f->labels);
    f->flat_tree = ml::FlatTree(f->tree);
    f->flat_forest = ml::FlatForest(f->forest);
    f->quant_tree = ml::FlatTreeQuant(f->flat_tree, &f->train);
    f->quant_forest = ml::FlatForestQuant(f->flat_forest, &f->train);
    return f;
  }();
  return *fx;
}

void predictions_per_s(benchmark::State& state, std::size_t n) {
  state.counters["predictions/s"] = benchmark::Counter(
      static_cast<double>(n), benchmark::Counter::kIsRate);
}

// Baseline: the training-side structures walked row by row — one
// dependent-load chain per level plus a loop-exit branch per node.
void BM_NodePredictTree(benchmark::State& state) {
  const PredictFixture& fx = predict_fixture();
  std::size_t n = 0;
  for (auto _ : state) {
    int acc = 0;
    for (std::size_t r = 0; r < fx.query.rows; ++r) {
      acc += fx.tree.predict({fx.query.row(r), fx.query.cols});
    }
    benchmark::DoNotOptimize(acc);
    n += fx.query.rows;
  }
  predictions_per_s(state, n);
}
BENCHMARK(BM_NodePredictTree);

void BM_NodePredictForest(benchmark::State& state) {
  const PredictFixture& fx = predict_fixture();
  std::size_t n = 0;
  for (auto _ : state) {
    int acc = 0;
    for (std::size_t r = 0; r < fx.query.rows; ++r) {
      acc += fx.forest.predict({fx.query.row(r), fx.query.cols});
    }
    benchmark::DoNotOptimize(acc);
    n += fx.query.rows;
  }
  predictions_per_s(state, n);
}
BENCHMARK(BM_NodePredictForest);

// Flat engine: SoA arrays, branchless fixed-depth walk, a block of rows
// in flight per tree level (the dependent loads of different rows
// overlap instead of serialising).
void BM_FlatPredictTree(benchmark::State& state) {
  const PredictFixture& fx = predict_fixture();
  std::vector<int> out(fx.query.rows);
  std::size_t n = 0;
  for (auto _ : state) {
    fx.flat_tree.predict_batch(fx.query, out);
    benchmark::DoNotOptimize(out.data());
    n += fx.query.rows;
  }
  predictions_per_s(state, n);
}
BENCHMARK(BM_FlatPredictTree);

void BM_FlatPredictForest(benchmark::State& state) {
  const PredictFixture& fx = predict_fixture();
  std::size_t n = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.flat_forest.predict_batch(fx.query));
    n += fx.query.rows;
  }
  predictions_per_s(state, n);
}
BENCHMARK(BM_FlatPredictForest);

// Quantized variant: int16 thresholds + encoded rows (cache density);
// divergence from exact is measured/bounded, not assumed (see the
// FlatQuant tests).
void BM_FlatPredictQuant(benchmark::State& state) {
  const PredictFixture& fx = predict_fixture();
  std::size_t n = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.quant_forest.predict_batch(fx.query));
    n += fx.query.rows;
  }
  predictions_per_s(state, n);
}
BENCHMARK(BM_FlatPredictQuant);

// End-to-end: warm-cache burst through the serve micro-batcher with the
// flat engine on/off (Arg). Rows come from the LRU, so the A/B isolates
// the classification stage the flat path replaced.
void BM_ServeBatchFlat(benchmark::State& state) {
  const bool use_flat = state.range(0) != 0;
  serve::PredictionService::Options opt;
  opt.threads = 1;
  opt.max_batch = 32;
  opt.use_flat = use_flat;
  serve::PredictionService svc(bench_classifier(), opt);
  const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const kernels::KernelInfo& k : kernels::all_kernels()) {
      if (k.supports(kir::DType::I32)) out.push_back(k.name);
    }
    return out;
  }();
  const auto burst_of = [&](std::size_t burst) {
    std::vector<std::future<serve::Result>> futures;
    futures.reserve(burst);
    for (std::size_t i = 0; i < burst; ++i) {
      serve::Request req;
      req.kernel = names[i % names.size()];
      req.dtype = kir::DType::I32;
      req.size_bytes = 1024;
      futures.push_back(svc.submit(std::move(req)));
    }
    for (std::future<serve::Result>& f : futures) {
      benchmark::DoNotOptimize(f.get().ok);
    }
  };
  burst_of(32);  // warm both LRUs
  std::size_t n = 0;
  for (auto _ : state) {
    burst_of(32);
    n += 32;
  }
  state.counters["requests/s"] = benchmark::Counter(
      static_cast<double>(n), benchmark::Counter::kIsRate);
  state.counters["flat"] = use_flat ? 1 : 0;
}
BENCHMARK(BM_ServeBatchFlat)
    ->ArgNames({"flat"})
    ->Arg(0)
    ->Arg(1)
    ->UseRealTime();

// Serial-vs-parallel wall time of the repeated-CV evaluation on a
// synthetic dataset (Arg = worker threads); results are bit-identical
// for every Arg.
void BM_EvaluateThreads(benchmark::State& state) {
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> u(0, 1);
  ml::Dataset ds({"f0", "f1", "noise"});
  for (int i = 0; i < 240; ++i) {
    ml::Sample s;
    s.kernel = "synth" + std::to_string(i);
    s.suite = "synthetic";
    const double a = u(rng);
    const double b = u(rng);
    s.features = {a, b, u(rng)};
    s.label = 1 + (a > 0.5) * 2 + (b > 0.5);
    for (int k = 1; k <= 4; ++k) {
      s.energy.push_back(100.0 * (1.0 + 0.5 * std::abs(k - s.label)));
      s.cycles.push_back(1000.0 / k);
    }
    ds.add(std::move(s));
  }
  ml::EvalOptions opt;
  opt.folds = 10;
  opt.repeats = 20;
  opt.threads = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    const ml::EvalResult res = ml::evaluate(ds, ds.columns(), opt);
    benchmark::DoNotOptimize(res.accuracy[0]);
  }
}
BENCHMARK(BM_EvaluateThreads)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
