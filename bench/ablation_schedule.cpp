// Ablation: loop schedule. The PULP OpenMP runtime in the paper only
// supports static scheduling; this harness compares its two flavours —
// contiguous chunks versus round-robin interleaving — on kernels with
// different memory footprints. Chunked scheduling puts all cores on the
// same TCDM bank whenever the chunk size is a multiple of the bank count
// (a real PULP pitfall); cyclic scheduling avoids the two serial divides
// in the region prologue and spreads unit-stride accesses across banks,
// but interleaves cache^W bank footprints for blocked patterns.
#include <cstdio>
#include <string>
#include <vector>

#include "dsl/builder.hpp"
#include "dsl/lower.hpp"
#include "energy/model.hpp"
#include "sim/cluster.hpp"

namespace {

using namespace pulpc;
using dsl::Buf;
using dsl::InitKind;
using dsl::KernelBuilder;
using dsl::Val;

Val ic(std::int32_t v) { return dsl::make_const_i(v); }

/// Unit-stride streaming kernel in either schedule.
dsl::KernelSpec stream(bool cyclic, std::uint32_t n) {
  KernelBuilder k(cyclic ? "stream_cyc" : "stream_chk", "ablation",
                  kir::DType::I32, n * 4);
  const Buf a = k.buffer("a", n);
  const Buf b = k.buffer("b", n, InitKind::Zero);
  const auto body = [&](Val i) {
    k.store(b, i, k.load(a, i) * ic(3) + ic(1));
  };
  if (cyclic) {
    k.par_for_cyclic("i", ic(0), ic(int(n)), body);
  } else {
    k.par_for("i", ic(0), ic(int(n)), body);
  }
  return k.build();
}

/// Row-blocked kernel (each iteration walks a 16-element row): blocked
/// footprints suit chunked scheduling.
dsl::KernelSpec rows(bool cyclic, std::uint32_t n) {
  KernelBuilder k(cyclic ? "rows_cyc" : "rows_chk", "ablation",
                  kir::DType::I32, n * 4);
  const std::uint32_t rows_n = n / 16;
  const Buf a = k.buffer("a", n);
  const Buf out = k.buffer("out", rows_n, InitKind::Zero);
  const auto body = [&](Val r) {
    auto acc = k.decl("acc", ic(0));
    k.for_("c", ic(0), ic(16), [&](Val c) {
      k.assign(acc, acc + k.load(a, r * ic(16) + c));
    });
    k.store(out, r, acc);
  };
  if (cyclic) {
    k.par_for_cyclic("r", ic(0), ic(int(rows_n)), body);
  } else {
    k.par_for("r", ic(0), ic(int(rows_n)), body);
  }
  return k.build();
}

/// Tiny repeated regions: prologue overhead dominates.
dsl::KernelSpec tiny_regions(bool cyclic) {
  KernelBuilder k(cyclic ? "tiny_cyc" : "tiny_chk", "ablation",
                  kir::DType::I32, 512);
  const Buf a = k.buffer("a", 64);
  k.for_("t", ic(0), ic(16), [&](Val) {
    const auto body = [&](Val i) {
      k.store(a, i, k.load(a, i) + ic(1));
    };
    if (cyclic) {
      k.par_for_cyclic("i", ic(0), ic(64), body);
    } else {
      k.par_for("i", ic(0), ic(64), body);
    }
  });
  return k.build();
}

struct Row {
  std::uint64_t cycles = 0;
  std::uint64_t conflicts = 0;
  double energy_uj = 0;
};

Row measure(const dsl::KernelSpec& spec, unsigned cores) {
  const kir::Program prog = dsl::lower(spec);
  sim::Cluster cl;
  cl.load(prog);
  const sim::RunResult r = cl.run(cores);
  if (!r.ok) {
    std::fprintf(stderr, "%s failed: %s\n", spec.name.c_str(),
                 r.error.c_str());
    std::exit(1);
  }
  return {r.stats.region_cycles(), r.stats.l1_conflicts(),
          energy::compute_energy(r.stats).total_uj()};
}

}  // namespace

int main() {
  std::printf("== Ablation: static loop schedules (8 cores) ==\n\n");
  std::printf("%-14s | %10s %9s %10s | %10s %9s %10s | %8s\n", "kernel",
              "chk cyc", "chk cnfl", "chk uJ", "cyc cyc", "cyc cnfl",
              "cyc uJ", "E ratio");

  bool ok = true;
  const auto compare = [&](const char* name, const dsl::KernelSpec& chk,
                           const dsl::KernelSpec& cyc) {
    const Row a = measure(chk, 8);
    const Row b = measure(cyc, 8);
    std::printf("%-14s | %10llu %9llu %10.3f | %10llu %9llu %10.3f | %8.3f\n",
                name, (unsigned long long)a.cycles,
                (unsigned long long)a.conflicts, a.energy_uj,
                (unsigned long long)b.cycles,
                (unsigned long long)b.conflicts, b.energy_uj,
                b.energy_uj / a.energy_uj);
    return std::pair{a, b};
  };

  const auto [sa, sb] = compare("stream 4KiB", stream(false, 1024),
                                stream(true, 1024));
  // Unit-stride + chunk size divisible by 16 banks: chunked conflicts.
  ok &= sa.conflicts > sb.conflicts;

  const auto [ra, rb] = compare("rows 4KiB", rows(false, 1024),
                                rows(true, 1024));
  (void)ra;
  (void)rb;

  const auto [ta, tb] = compare("tiny x16", tiny_regions(false),
                                tiny_regions(true));
  // No divides in the prologue: cyclic wins on region-entry overhead.
  ok &= tb.cycles < ta.cycles;

  std::printf(
      "\nchecks:\n"
      "  [%s] cyclic removes the chunked bank-conflict pathology on "
      "unit-stride streams\n"
      "  [%s] cyclic is cheaper for tiny repeated regions (no prologue "
      "divides)\n",
      sa.conflicts > sb.conflicts ? "PASS" : "FAIL",
      tb.cycles < ta.cycles ? "PASS" : "FAIL");
  std::printf("\nresult: %s\n", ok ? "all checks PASS" : "CHECK FAILED");
  return ok ? 0 : 1;
}
