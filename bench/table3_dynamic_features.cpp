// Table III: the dynamic features. Demonstrates the full GVSOC-style
// path: run kernels with the text trace attached, parse the trace with
// the PULPListeners hierarchy, extract the Table III metrics, and verify
// they agree exactly with the simulator's direct counters.
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common.hpp"
#include "dsl/lower.hpp"
#include "feat/features.hpp"
#include "kernels/registry.hpp"
#include "sim/cluster.hpp"
#include "trace/listeners.hpp"
#include "trace/sinks.hpp"

int main() {
  using namespace pulpc;
  std::printf("== Table III: dynamic features from execution traces ==\n");

  bool ok = true;
  for (const char* name : {"gemm", "stride_conflict", "histogram"}) {
    const kernels::KernelInfo& info = kernels::kernel_info(name);
    const kir::Program prog =
        dsl::lower(info.factory(kir::DType::I32, 2048));
    sim::Cluster cluster;
    cluster.load(prog);

    std::printf("\nkernel %s (i32, 2048 B):\n", name);
    std::printf("  %-5s %8s %8s %9s %9s %9s %10s %11s\n", "cores",
                "PE_idle", "PE_sleep", "PE_alu", "PE_l1", "L1_read",
                "L1_write", "L1_confl");
    for (const unsigned cores : {1U, 2U, 4U, 8U}) {
      std::ostringstream text;
      trace::TextTraceWriter writer(text);
      const sim::RunResult run = cluster.run(cores, &writer);
      if (!run.ok) {
        std::fprintf(stderr, "run failed: %s\n", run.error.c_str());
        return 1;
      }
      // Reconstruct the same metrics from the parsed trace.
      trace::TraceAnalyser analyser;
      trace::PulpListeners listeners;
      listeners.register_on(analyser);
      std::istringstream in(text.str());
      analyser.analyse(in);
      const feat::DynamicFeatures direct =
          feat::extract_dynamic(run.stats);
      const feat::DynamicFeatures parsed =
          feat::extract_dynamic(listeners.to_run_stats());
      std::printf("  %-5u %8.4f %8.4f %9.0f %9.0f %9.0f %10.0f %11.0f\n",
                  cores, direct.pe_idle, direct.pe_sleep, direct.pe_alu,
                  direct.pe_l1, direct.l1_read, direct.l1_write,
                  direct.l1_conflicts);
      const bool same =
          std::abs(direct.pe_idle - parsed.pe_idle) < 1e-12 &&
          std::abs(direct.pe_sleep - parsed.pe_sleep) < 1e-12 &&
          direct.pe_alu == parsed.pe_alu && direct.pe_l1 == parsed.pe_l1 &&
          direct.l1_read == parsed.l1_read &&
          direct.l1_write == parsed.l1_write &&
          direct.l1_conflicts == parsed.l1_conflicts;
      if (!same) {
        std::printf("      ^ MISMATCH between trace-parsed and direct\n");
        ok = false;
      }
    }
  }

  std::printf("\nresult: %s\n",
              ok ? "trace-parsed features identical to direct counters"
                 : "CHECK FAILED");
  return ok ? 0 : 1;
}
