// Ablation: energy-model sensitivity. The Table I constants come from one
// post-layout corner (0.65 V); how robust are the minimum-energy labels
// to perturbations of the model? This harness relabels a one-size slice
// of the dataset under perturbed models and reports how many labels move
// and by how much energy it would cost to use the nominal labels on the
// perturbed platform.
//
// The slice is simulated exactly once: the nominal pass fills a raw-
// counter artifact store (PULPC_ARTIFACT_DIR, default
// pulpclass_artifacts) and every perturbation is a pure replay of the
// stored counters through core::relabel — zero re-simulation, asserted
// below. On a warm store even the nominal pass is replayed.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/artifacts.hpp"
#include "core/pipeline.hpp"
#include "kernels/registry.hpp"
#include "ml/metrics.hpp"

namespace {

using namespace pulpc;

std::vector<core::SampleConfig> slice_configs() {
  std::vector<core::SampleConfig> out;
  for (const kernels::KernelInfo& info : kernels::all_kernels()) {
    const kir::DType dt = info.supports(kir::DType::I32) ? kir::DType::I32
                                                         : kir::DType::F32;
    out.push_back({info.name, dt, 2048});
  }
  return out;
}

std::string artifact_dir() {
  if (const char* env = std::getenv("PULPC_ARTIFACT_DIR")) {
    if (*env) return env;
  }
  return "pulpclass_artifacts";
}

struct SlicePass {
  std::vector<ml::Sample> samples;
  core::StageReport report;
};

SlicePass build_slice(const core::ArtifactStore& store,
                      const energy::EnergyModel& model) {
  core::BuildOptions opt;
  opt.energy = model;
  SlicePass pass;
  opt.stage_report = [&](const core::StageReport& r) { pass.report = r; };
  const ml::Dataset ds = core::relabel(store, slice_configs(), opt);
  pass.samples = ds.samples();
  return pass;
}

struct Perturbation {
  const char* name;
  energy::EnergyModel model;
};

}  // namespace

int main() {
  std::printf("== Ablation: energy-model sensitivity ==\n");
  std::printf("(59 kernels, one dtype each, 2 KiB size; labels rebuilt "
              "under perturbed Table I constants)\n\n");

  const core::ArtifactStore store(artifact_dir(),
                                  core::BuildOptions{}.cluster);
  const SlicePass nominal_pass = build_slice(store, {});
  const std::vector<ml::Sample>& nominal = nominal_pass.samples;
  std::fprintf(stderr,
               "nominal pass: %zu runs simulated, %zu replayed from %s\n",
               nominal_pass.report.simulated_runs,
               nominal_pass.report.replayed_runs, store.dir().c_str());

  std::vector<Perturbation> perturbations;
  {
    Perturbation p{"leakage +50%", {}};
    p.model.pe_leakage *= 1.5;
    p.model.l1_leakage *= 1.5;
    p.model.l2_leakage *= 1.5;
    p.model.icache_leakage *= 1.5;
    p.model.other_leakage *= 1.5;
    p.model.fpu_leakage *= 1.5;
    perturbations.push_back(p);
  }
  {
    Perturbation p{"leakage -50%", {}};
    p.model.pe_leakage *= 0.5;
    p.model.l1_leakage *= 0.5;
    p.model.l2_leakage *= 0.5;
    p.model.icache_leakage *= 0.5;
    p.model.other_leakage *= 0.5;
    p.model.fpu_leakage *= 0.5;
    perturbations.push_back(p);
  }
  {
    Perturbation p{"switching +25%", {}};
    p.model.pe_alu *= 1.25;
    p.model.pe_fp *= 1.25;
    p.model.pe_l1 *= 1.25;
    p.model.pe_nop *= 1.25;
    p.model.l1_read *= 1.25;
    p.model.l1_write *= 1.25;
    p.model.icache_use *= 1.25;
    p.model.other_active *= 1.25;
    perturbations.push_back(p);
  }
  {
    Perturbation p{"cheap wait (nop/2)", {}};
    p.model.pe_nop *= 0.5;
    perturbations.push_back(p);
  }

  std::printf("%-20s %8s %14s %14s\n", "perturbation", "moved",
              "mean shift", "nominal waste");
  bool ok = true;
  std::size_t resimulated = 0;
  for (const Perturbation& p : perturbations) {
    const SlicePass pass = build_slice(store, p.model);
    const std::vector<ml::Sample>& perturbed = pass.samples;
    resimulated += pass.report.simulated_runs;
    std::size_t moved = 0;
    double shift = 0;
    double waste = 0;
    for (std::size_t i = 0; i < nominal.size(); ++i) {
      if (perturbed[i].label != nominal[i].label) ++moved;
      shift += std::abs(perturbed[i].label - nominal[i].label);
      // Cost of deploying nominal labels on the perturbed platform.
      waste += ml::energy_waste(perturbed[i], nominal[i].label);
    }
    const double n = double(nominal.size());
    std::printf("%-20s %3zu/%-4zu %11.2f cls %12.2f %%\n", p.name, moved,
                nominal.size(), shift / n, 100.0 * waste / n);
    // Robustness: stale labels must stay cheap (the paper's 5% band).
    ok &= waste / n < 0.05;
  }

  // The whole point of the artifact store: perturbation sweeps are pure
  // replays of the one simulation pass.
  const bool replay_ok = resimulated == 0;
  std::printf(
      "\nchecks:\n  [%s] nominal labels waste <5%% energy on every "
      "perturbed platform\n",
      ok ? "PASS" : "FAIL");
  std::printf("  [%s] perturbation sweep replayed from the artifact store "
              "(%zu re-simulations)\n",
              replay_ok ? "PASS" : "FAIL", resimulated);
  ok &= replay_ok;
  std::printf("\nresult: %s\n",
              ok ? "labels are robust to Table I perturbations"
                 : "CHECK FAILED");
  return ok ? 0 : 1;
}
