file(REMOVE_RECURSE
  "libpulpc_mca.a"
)
