file(REMOVE_RECURSE
  "CMakeFiles/pulpc_mca.dir/analyzer.cpp.o"
  "CMakeFiles/pulpc_mca.dir/analyzer.cpp.o.d"
  "libpulpc_mca.a"
  "libpulpc_mca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pulpc_mca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
