# Empty dependencies file for pulpc_mca.
# This may be replaced when dependencies are built.
