file(REMOVE_RECURSE
  "libpulpc_core.a"
)
