file(REMOVE_RECURSE
  "CMakeFiles/pulpc_core.dir/artifacts.cpp.o"
  "CMakeFiles/pulpc_core.dir/artifacts.cpp.o.d"
  "CMakeFiles/pulpc_core.dir/classifier.cpp.o"
  "CMakeFiles/pulpc_core.dir/classifier.cpp.o.d"
  "CMakeFiles/pulpc_core.dir/pipeline.cpp.o"
  "CMakeFiles/pulpc_core.dir/pipeline.cpp.o.d"
  "libpulpc_core.a"
  "libpulpc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pulpc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
