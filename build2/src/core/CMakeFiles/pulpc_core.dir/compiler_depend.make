# Empty compiler generated dependencies file for pulpc_core.
# This may be replaced when dependencies are built.
