file(REMOVE_RECURSE
  "CMakeFiles/pulpc_parallel.dir/parallel.cpp.o"
  "CMakeFiles/pulpc_parallel.dir/parallel.cpp.o.d"
  "libpulpc_parallel.a"
  "libpulpc_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pulpc_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
