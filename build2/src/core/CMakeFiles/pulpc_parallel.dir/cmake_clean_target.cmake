file(REMOVE_RECURSE
  "libpulpc_parallel.a"
)
