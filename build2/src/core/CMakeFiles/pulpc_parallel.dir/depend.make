# Empty dependencies file for pulpc_parallel.
# This may be replaced when dependencies are built.
