file(REMOVE_RECURSE
  "CMakeFiles/pulpc_feat.dir/features.cpp.o"
  "CMakeFiles/pulpc_feat.dir/features.cpp.o.d"
  "libpulpc_feat.a"
  "libpulpc_feat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pulpc_feat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
