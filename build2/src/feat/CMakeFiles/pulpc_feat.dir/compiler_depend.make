# Empty compiler generated dependencies file for pulpc_feat.
# This may be replaced when dependencies are built.
