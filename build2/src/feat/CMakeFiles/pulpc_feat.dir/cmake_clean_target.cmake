file(REMOVE_RECURSE
  "libpulpc_feat.a"
)
