# Empty compiler generated dependencies file for pulpc_sim.
# This may be replaced when dependencies are built.
