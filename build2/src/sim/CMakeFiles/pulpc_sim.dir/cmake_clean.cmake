file(REMOVE_RECURSE
  "CMakeFiles/pulpc_sim.dir/cluster.cpp.o"
  "CMakeFiles/pulpc_sim.dir/cluster.cpp.o.d"
  "CMakeFiles/pulpc_sim.dir/stats.cpp.o"
  "CMakeFiles/pulpc_sim.dir/stats.cpp.o.d"
  "libpulpc_sim.a"
  "libpulpc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pulpc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
