file(REMOVE_RECURSE
  "libpulpc_sim.a"
)
