# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build2/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("kir")
subdirs("dsl")
subdirs("sim")
subdirs("trace")
subdirs("energy")
subdirs("mca")
subdirs("feat")
subdirs("ml")
subdirs("kernels")
subdirs("core")
