# Empty dependencies file for pulpc_trace.
# This may be replaced when dependencies are built.
