file(REMOVE_RECURSE
  "CMakeFiles/pulpc_trace.dir/listeners.cpp.o"
  "CMakeFiles/pulpc_trace.dir/listeners.cpp.o.d"
  "CMakeFiles/pulpc_trace.dir/parser.cpp.o"
  "CMakeFiles/pulpc_trace.dir/parser.cpp.o.d"
  "libpulpc_trace.a"
  "libpulpc_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pulpc_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
