file(REMOVE_RECURSE
  "libpulpc_trace.a"
)
