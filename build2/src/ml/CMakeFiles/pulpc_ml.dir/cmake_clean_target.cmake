file(REMOVE_RECURSE
  "libpulpc_ml.a"
)
