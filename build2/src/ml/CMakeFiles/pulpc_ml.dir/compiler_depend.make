# Empty compiler generated dependencies file for pulpc_ml.
# This may be replaced when dependencies are built.
