file(REMOVE_RECURSE
  "CMakeFiles/pulpc_ml.dir/cv.cpp.o"
  "CMakeFiles/pulpc_ml.dir/cv.cpp.o.d"
  "CMakeFiles/pulpc_ml.dir/dataset.cpp.o"
  "CMakeFiles/pulpc_ml.dir/dataset.cpp.o.d"
  "CMakeFiles/pulpc_ml.dir/forest.cpp.o"
  "CMakeFiles/pulpc_ml.dir/forest.cpp.o.d"
  "CMakeFiles/pulpc_ml.dir/metrics.cpp.o"
  "CMakeFiles/pulpc_ml.dir/metrics.cpp.o.d"
  "CMakeFiles/pulpc_ml.dir/mlp.cpp.o"
  "CMakeFiles/pulpc_ml.dir/mlp.cpp.o.d"
  "CMakeFiles/pulpc_ml.dir/tree.cpp.o"
  "CMakeFiles/pulpc_ml.dir/tree.cpp.o.d"
  "libpulpc_ml.a"
  "libpulpc_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pulpc_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
