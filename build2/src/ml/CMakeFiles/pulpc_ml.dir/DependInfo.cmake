
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/cv.cpp" "src/ml/CMakeFiles/pulpc_ml.dir/cv.cpp.o" "gcc" "src/ml/CMakeFiles/pulpc_ml.dir/cv.cpp.o.d"
  "/root/repo/src/ml/dataset.cpp" "src/ml/CMakeFiles/pulpc_ml.dir/dataset.cpp.o" "gcc" "src/ml/CMakeFiles/pulpc_ml.dir/dataset.cpp.o.d"
  "/root/repo/src/ml/forest.cpp" "src/ml/CMakeFiles/pulpc_ml.dir/forest.cpp.o" "gcc" "src/ml/CMakeFiles/pulpc_ml.dir/forest.cpp.o.d"
  "/root/repo/src/ml/metrics.cpp" "src/ml/CMakeFiles/pulpc_ml.dir/metrics.cpp.o" "gcc" "src/ml/CMakeFiles/pulpc_ml.dir/metrics.cpp.o.d"
  "/root/repo/src/ml/mlp.cpp" "src/ml/CMakeFiles/pulpc_ml.dir/mlp.cpp.o" "gcc" "src/ml/CMakeFiles/pulpc_ml.dir/mlp.cpp.o.d"
  "/root/repo/src/ml/tree.cpp" "src/ml/CMakeFiles/pulpc_ml.dir/tree.cpp.o" "gcc" "src/ml/CMakeFiles/pulpc_ml.dir/tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/kir/CMakeFiles/pulpc_kir.dir/DependInfo.cmake"
  "/root/repo/build2/src/core/CMakeFiles/pulpc_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
