file(REMOVE_RECURSE
  "libpulpc_kir.a"
)
