
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kir/analysis.cpp" "src/kir/CMakeFiles/pulpc_kir.dir/analysis.cpp.o" "gcc" "src/kir/CMakeFiles/pulpc_kir.dir/analysis.cpp.o.d"
  "/root/repo/src/kir/cfg.cpp" "src/kir/CMakeFiles/pulpc_kir.dir/cfg.cpp.o" "gcc" "src/kir/CMakeFiles/pulpc_kir.dir/cfg.cpp.o.d"
  "/root/repo/src/kir/ir.cpp" "src/kir/CMakeFiles/pulpc_kir.dir/ir.cpp.o" "gcc" "src/kir/CMakeFiles/pulpc_kir.dir/ir.cpp.o.d"
  "/root/repo/src/kir/operands.cpp" "src/kir/CMakeFiles/pulpc_kir.dir/operands.cpp.o" "gcc" "src/kir/CMakeFiles/pulpc_kir.dir/operands.cpp.o.d"
  "/root/repo/src/kir/opt.cpp" "src/kir/CMakeFiles/pulpc_kir.dir/opt.cpp.o" "gcc" "src/kir/CMakeFiles/pulpc_kir.dir/opt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
