# Empty dependencies file for pulpc_kir.
# This may be replaced when dependencies are built.
