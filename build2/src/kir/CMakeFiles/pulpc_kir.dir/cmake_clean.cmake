file(REMOVE_RECURSE
  "CMakeFiles/pulpc_kir.dir/analysis.cpp.o"
  "CMakeFiles/pulpc_kir.dir/analysis.cpp.o.d"
  "CMakeFiles/pulpc_kir.dir/cfg.cpp.o"
  "CMakeFiles/pulpc_kir.dir/cfg.cpp.o.d"
  "CMakeFiles/pulpc_kir.dir/ir.cpp.o"
  "CMakeFiles/pulpc_kir.dir/ir.cpp.o.d"
  "CMakeFiles/pulpc_kir.dir/operands.cpp.o"
  "CMakeFiles/pulpc_kir.dir/operands.cpp.o.d"
  "CMakeFiles/pulpc_kir.dir/opt.cpp.o"
  "CMakeFiles/pulpc_kir.dir/opt.cpp.o.d"
  "libpulpc_kir.a"
  "libpulpc_kir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pulpc_kir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
