# Empty compiler generated dependencies file for pulpc_kernels.
# This may be replaced when dependencies are built.
