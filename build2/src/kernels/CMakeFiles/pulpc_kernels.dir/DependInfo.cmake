
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/custom.cpp" "src/kernels/CMakeFiles/pulpc_kernels.dir/custom.cpp.o" "gcc" "src/kernels/CMakeFiles/pulpc_kernels.dir/custom.cpp.o.d"
  "/root/repo/src/kernels/polybench.cpp" "src/kernels/CMakeFiles/pulpc_kernels.dir/polybench.cpp.o" "gcc" "src/kernels/CMakeFiles/pulpc_kernels.dir/polybench.cpp.o.d"
  "/root/repo/src/kernels/registry.cpp" "src/kernels/CMakeFiles/pulpc_kernels.dir/registry.cpp.o" "gcc" "src/kernels/CMakeFiles/pulpc_kernels.dir/registry.cpp.o.d"
  "/root/repo/src/kernels/utdsp.cpp" "src/kernels/CMakeFiles/pulpc_kernels.dir/utdsp.cpp.o" "gcc" "src/kernels/CMakeFiles/pulpc_kernels.dir/utdsp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/dsl/CMakeFiles/pulpc_dsl.dir/DependInfo.cmake"
  "/root/repo/build2/src/kir/CMakeFiles/pulpc_kir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
