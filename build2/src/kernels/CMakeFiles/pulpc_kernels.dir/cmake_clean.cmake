file(REMOVE_RECURSE
  "CMakeFiles/pulpc_kernels.dir/custom.cpp.o"
  "CMakeFiles/pulpc_kernels.dir/custom.cpp.o.d"
  "CMakeFiles/pulpc_kernels.dir/polybench.cpp.o"
  "CMakeFiles/pulpc_kernels.dir/polybench.cpp.o.d"
  "CMakeFiles/pulpc_kernels.dir/registry.cpp.o"
  "CMakeFiles/pulpc_kernels.dir/registry.cpp.o.d"
  "CMakeFiles/pulpc_kernels.dir/utdsp.cpp.o"
  "CMakeFiles/pulpc_kernels.dir/utdsp.cpp.o.d"
  "libpulpc_kernels.a"
  "libpulpc_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pulpc_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
