file(REMOVE_RECURSE
  "libpulpc_kernels.a"
)
