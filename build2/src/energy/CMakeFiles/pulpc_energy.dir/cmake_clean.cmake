file(REMOVE_RECURSE
  "CMakeFiles/pulpc_energy.dir/model.cpp.o"
  "CMakeFiles/pulpc_energy.dir/model.cpp.o.d"
  "libpulpc_energy.a"
  "libpulpc_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pulpc_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
