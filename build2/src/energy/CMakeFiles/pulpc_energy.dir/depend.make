# Empty dependencies file for pulpc_energy.
# This may be replaced when dependencies are built.
