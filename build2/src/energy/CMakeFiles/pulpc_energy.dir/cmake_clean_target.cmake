file(REMOVE_RECURSE
  "libpulpc_energy.a"
)
