file(REMOVE_RECURSE
  "libpulpc_dsl.a"
)
