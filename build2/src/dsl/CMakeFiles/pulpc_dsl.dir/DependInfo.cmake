
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsl/ast.cpp" "src/dsl/CMakeFiles/pulpc_dsl.dir/ast.cpp.o" "gcc" "src/dsl/CMakeFiles/pulpc_dsl.dir/ast.cpp.o.d"
  "/root/repo/src/dsl/builder.cpp" "src/dsl/CMakeFiles/pulpc_dsl.dir/builder.cpp.o" "gcc" "src/dsl/CMakeFiles/pulpc_dsl.dir/builder.cpp.o.d"
  "/root/repo/src/dsl/lower.cpp" "src/dsl/CMakeFiles/pulpc_dsl.dir/lower.cpp.o" "gcc" "src/dsl/CMakeFiles/pulpc_dsl.dir/lower.cpp.o.d"
  "/root/repo/src/dsl/validate.cpp" "src/dsl/CMakeFiles/pulpc_dsl.dir/validate.cpp.o" "gcc" "src/dsl/CMakeFiles/pulpc_dsl.dir/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/kir/CMakeFiles/pulpc_kir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
