file(REMOVE_RECURSE
  "CMakeFiles/pulpc_dsl.dir/ast.cpp.o"
  "CMakeFiles/pulpc_dsl.dir/ast.cpp.o.d"
  "CMakeFiles/pulpc_dsl.dir/builder.cpp.o"
  "CMakeFiles/pulpc_dsl.dir/builder.cpp.o.d"
  "CMakeFiles/pulpc_dsl.dir/lower.cpp.o"
  "CMakeFiles/pulpc_dsl.dir/lower.cpp.o.d"
  "CMakeFiles/pulpc_dsl.dir/validate.cpp.o"
  "CMakeFiles/pulpc_dsl.dir/validate.cpp.o.d"
  "libpulpc_dsl.a"
  "libpulpc_dsl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pulpc_dsl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
