# Empty compiler generated dependencies file for pulpc_dsl.
# This may be replaced when dependencies are built.
