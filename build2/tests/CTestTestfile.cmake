# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build2/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build2/tests/test_kir[1]_include.cmake")
include("/root/repo/build2/tests/test_dsl_ast[1]_include.cmake")
include("/root/repo/build2/tests/test_lower[1]_include.cmake")
include("/root/repo/build2/tests/test_sim_exec[1]_include.cmake")
include("/root/repo/build2/tests/test_sim_cluster[1]_include.cmake")
include("/root/repo/build2/tests/test_sim_parallel[1]_include.cmake")
include("/root/repo/build2/tests/test_trace[1]_include.cmake")
include("/root/repo/build2/tests/test_trace_consistency[1]_include.cmake")
include("/root/repo/build2/tests/test_energy[1]_include.cmake")
include("/root/repo/build2/tests/test_mca[1]_include.cmake")
include("/root/repo/build2/tests/test_features[1]_include.cmake")
include("/root/repo/build2/tests/test_ml_tree[1]_include.cmake")
include("/root/repo/build2/tests/test_ml_forest[1]_include.cmake")
include("/root/repo/build2/tests/test_ml_mlp[1]_include.cmake")
include("/root/repo/build2/tests/test_ml_cv[1]_include.cmake")
include("/root/repo/build2/tests/test_ml_dataset[1]_include.cmake")
include("/root/repo/build2/tests/test_kernels[1]_include.cmake")
include("/root/repo/build2/tests/test_parallel[1]_include.cmake")
include("/root/repo/build2/tests/test_pipeline[1]_include.cmake")
include("/root/repo/build2/tests/test_artifacts[1]_include.cmake")
include("/root/repo/build2/tests/test_pipeline_parallel[1]_include.cmake")
include("/root/repo/build2/tests/test_schedule[1]_include.cmake")
include("/root/repo/build2/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build2/tests/test_golden[1]_include.cmake")
include("/root/repo/build2/tests/test_persistence[1]_include.cmake")
include("/root/repo/build2/tests/test_opt[1]_include.cmake")
include("/root/repo/build2/tests/test_operands[1]_include.cmake")
