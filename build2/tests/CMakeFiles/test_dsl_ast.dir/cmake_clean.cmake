file(REMOVE_RECURSE
  "CMakeFiles/test_dsl_ast.dir/test_dsl_ast.cpp.o"
  "CMakeFiles/test_dsl_ast.dir/test_dsl_ast.cpp.o.d"
  "test_dsl_ast"
  "test_dsl_ast.pdb"
  "test_dsl_ast[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dsl_ast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
