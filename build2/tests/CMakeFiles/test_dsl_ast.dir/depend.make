# Empty dependencies file for test_dsl_ast.
# This may be replaced when dependencies are built.
