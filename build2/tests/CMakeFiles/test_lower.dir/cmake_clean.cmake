file(REMOVE_RECURSE
  "CMakeFiles/test_lower.dir/test_lower.cpp.o"
  "CMakeFiles/test_lower.dir/test_lower.cpp.o.d"
  "test_lower"
  "test_lower.pdb"
  "test_lower[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lower.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
