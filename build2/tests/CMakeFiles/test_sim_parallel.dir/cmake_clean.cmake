file(REMOVE_RECURSE
  "CMakeFiles/test_sim_parallel.dir/test_sim_parallel.cpp.o"
  "CMakeFiles/test_sim_parallel.dir/test_sim_parallel.cpp.o.d"
  "test_sim_parallel"
  "test_sim_parallel.pdb"
  "test_sim_parallel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
