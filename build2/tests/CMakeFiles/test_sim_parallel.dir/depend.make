# Empty dependencies file for test_sim_parallel.
# This may be replaced when dependencies are built.
