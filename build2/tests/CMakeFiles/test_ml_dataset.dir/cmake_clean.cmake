file(REMOVE_RECURSE
  "CMakeFiles/test_ml_dataset.dir/test_ml_dataset.cpp.o"
  "CMakeFiles/test_ml_dataset.dir/test_ml_dataset.cpp.o.d"
  "test_ml_dataset"
  "test_ml_dataset.pdb"
  "test_ml_dataset[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ml_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
