# Empty dependencies file for test_ml_dataset.
# This may be replaced when dependencies are built.
