# Empty dependencies file for test_ml_cv.
# This may be replaced when dependencies are built.
