file(REMOVE_RECURSE
  "CMakeFiles/test_ml_cv.dir/test_ml_cv.cpp.o"
  "CMakeFiles/test_ml_cv.dir/test_ml_cv.cpp.o.d"
  "test_ml_cv"
  "test_ml_cv.pdb"
  "test_ml_cv[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ml_cv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
