file(REMOVE_RECURSE
  "CMakeFiles/test_mca.dir/test_mca.cpp.o"
  "CMakeFiles/test_mca.dir/test_mca.cpp.o.d"
  "test_mca"
  "test_mca.pdb"
  "test_mca[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
