# Empty dependencies file for test_mca.
# This may be replaced when dependencies are built.
