# Empty compiler generated dependencies file for test_pipeline_parallel.
# This may be replaced when dependencies are built.
