file(REMOVE_RECURSE
  "CMakeFiles/test_pipeline_parallel.dir/test_pipeline_parallel.cpp.o"
  "CMakeFiles/test_pipeline_parallel.dir/test_pipeline_parallel.cpp.o.d"
  "test_pipeline_parallel"
  "test_pipeline_parallel.pdb"
  "test_pipeline_parallel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pipeline_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
