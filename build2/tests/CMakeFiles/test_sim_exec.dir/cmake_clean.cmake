file(REMOVE_RECURSE
  "CMakeFiles/test_sim_exec.dir/test_sim_exec.cpp.o"
  "CMakeFiles/test_sim_exec.dir/test_sim_exec.cpp.o.d"
  "test_sim_exec"
  "test_sim_exec.pdb"
  "test_sim_exec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
