# Empty dependencies file for test_sim_exec.
# This may be replaced when dependencies are built.
