file(REMOVE_RECURSE
  "CMakeFiles/test_operands.dir/test_operands.cpp.o"
  "CMakeFiles/test_operands.dir/test_operands.cpp.o.d"
  "test_operands"
  "test_operands.pdb"
  "test_operands[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_operands.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
