# Empty dependencies file for test_operands.
# This may be replaced when dependencies are built.
