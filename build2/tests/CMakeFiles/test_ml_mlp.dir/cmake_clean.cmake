file(REMOVE_RECURSE
  "CMakeFiles/test_ml_mlp.dir/test_ml_mlp.cpp.o"
  "CMakeFiles/test_ml_mlp.dir/test_ml_mlp.cpp.o.d"
  "test_ml_mlp"
  "test_ml_mlp.pdb"
  "test_ml_mlp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ml_mlp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
