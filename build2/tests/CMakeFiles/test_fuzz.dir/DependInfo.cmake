
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_fuzz.cpp" "tests/CMakeFiles/test_fuzz.dir/test_fuzz.cpp.o" "gcc" "tests/CMakeFiles/test_fuzz.dir/test_fuzz.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/core/CMakeFiles/pulpc_core.dir/DependInfo.cmake"
  "/root/repo/build2/src/kernels/CMakeFiles/pulpc_kernels.dir/DependInfo.cmake"
  "/root/repo/build2/src/ml/CMakeFiles/pulpc_ml.dir/DependInfo.cmake"
  "/root/repo/build2/src/feat/CMakeFiles/pulpc_feat.dir/DependInfo.cmake"
  "/root/repo/build2/src/mca/CMakeFiles/pulpc_mca.dir/DependInfo.cmake"
  "/root/repo/build2/src/energy/CMakeFiles/pulpc_energy.dir/DependInfo.cmake"
  "/root/repo/build2/src/trace/CMakeFiles/pulpc_trace.dir/DependInfo.cmake"
  "/root/repo/build2/src/sim/CMakeFiles/pulpc_sim.dir/DependInfo.cmake"
  "/root/repo/build2/src/dsl/CMakeFiles/pulpc_dsl.dir/DependInfo.cmake"
  "/root/repo/build2/src/kir/CMakeFiles/pulpc_kir.dir/DependInfo.cmake"
  "/root/repo/build2/src/core/CMakeFiles/pulpc_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
