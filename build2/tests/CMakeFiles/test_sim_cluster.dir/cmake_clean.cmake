file(REMOVE_RECURSE
  "CMakeFiles/test_sim_cluster.dir/test_sim_cluster.cpp.o"
  "CMakeFiles/test_sim_cluster.dir/test_sim_cluster.cpp.o.d"
  "test_sim_cluster"
  "test_sim_cluster.pdb"
  "test_sim_cluster[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
