# Empty dependencies file for test_sim_cluster.
# This may be replaced when dependencies are built.
