file(REMOVE_RECURSE
  "CMakeFiles/test_ml_tree.dir/test_ml_tree.cpp.o"
  "CMakeFiles/test_ml_tree.dir/test_ml_tree.cpp.o.d"
  "test_ml_tree"
  "test_ml_tree.pdb"
  "test_ml_tree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ml_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
