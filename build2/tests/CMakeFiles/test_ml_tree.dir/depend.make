# Empty dependencies file for test_ml_tree.
# This may be replaced when dependencies are built.
