# Empty dependencies file for test_ml_forest.
# This may be replaced when dependencies are built.
