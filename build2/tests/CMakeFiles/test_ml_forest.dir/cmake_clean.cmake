file(REMOVE_RECURSE
  "CMakeFiles/test_ml_forest.dir/test_ml_forest.cpp.o"
  "CMakeFiles/test_ml_forest.dir/test_ml_forest.cpp.o.d"
  "test_ml_forest"
  "test_ml_forest.pdb"
  "test_ml_forest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ml_forest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
