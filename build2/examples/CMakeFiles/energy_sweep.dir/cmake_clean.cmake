file(REMOVE_RECURSE
  "CMakeFiles/energy_sweep.dir/energy_sweep.cpp.o"
  "CMakeFiles/energy_sweep.dir/energy_sweep.cpp.o.d"
  "energy_sweep"
  "energy_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
