# Empty dependencies file for energy_sweep.
# This may be replaced when dependencies are built.
