file(REMOVE_RECURSE
  "../bench/micro"
  "../bench/micro.pdb"
  "CMakeFiles/micro.dir/micro.cpp.o"
  "CMakeFiles/micro.dir/micro.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
