# Empty compiler generated dependencies file for ablation_generalization.
# This may be replaced when dependencies are built.
