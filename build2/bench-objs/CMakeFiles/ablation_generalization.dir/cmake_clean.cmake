file(REMOVE_RECURSE
  "../bench/ablation_generalization"
  "../bench/ablation_generalization.pdb"
  "CMakeFiles/ablation_generalization.dir/ablation_generalization.cpp.o"
  "CMakeFiles/ablation_generalization.dir/ablation_generalization.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_generalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
