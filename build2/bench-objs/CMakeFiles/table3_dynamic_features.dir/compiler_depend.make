# Empty compiler generated dependencies file for table3_dynamic_features.
# This may be replaced when dependencies are built.
