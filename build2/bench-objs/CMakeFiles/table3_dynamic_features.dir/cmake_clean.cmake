file(REMOVE_RECURSE
  "../bench/table3_dynamic_features"
  "../bench/table3_dynamic_features.pdb"
  "CMakeFiles/table3_dynamic_features.dir/table3_dynamic_features.cpp.o"
  "CMakeFiles/table3_dynamic_features.dir/table3_dynamic_features.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_dynamic_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
