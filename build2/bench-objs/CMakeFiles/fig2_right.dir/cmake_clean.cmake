file(REMOVE_RECURSE
  "../bench/fig2_right"
  "../bench/fig2_right.pdb"
  "CMakeFiles/fig2_right.dir/fig2_right.cpp.o"
  "CMakeFiles/fig2_right.dir/fig2_right.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_right.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
