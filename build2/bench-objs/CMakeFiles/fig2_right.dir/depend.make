# Empty dependencies file for fig2_right.
# This may be replaced when dependencies are built.
