file(REMOVE_RECURSE
  "../bench/ablation_models"
  "../bench/ablation_models.pdb"
  "CMakeFiles/ablation_models.dir/ablation_models.cpp.o"
  "CMakeFiles/ablation_models.dir/ablation_models.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
