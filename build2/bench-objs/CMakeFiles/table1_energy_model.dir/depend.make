# Empty dependencies file for table1_energy_model.
# This may be replaced when dependencies are built.
