file(REMOVE_RECURSE
  "../bench/dataset_stats"
  "../bench/dataset_stats.pdb"
  "CMakeFiles/dataset_stats.dir/dataset_stats.cpp.o"
  "CMakeFiles/dataset_stats.dir/dataset_stats.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataset_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
