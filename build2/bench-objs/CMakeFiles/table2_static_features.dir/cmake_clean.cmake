file(REMOVE_RECURSE
  "../bench/table2_static_features"
  "../bench/table2_static_features.pdb"
  "CMakeFiles/table2_static_features.dir/table2_static_features.cpp.o"
  "CMakeFiles/table2_static_features.dir/table2_static_features.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_static_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
