file(REMOVE_RECURSE
  "../bench/fig2_left"
  "../bench/fig2_left.pdb"
  "CMakeFiles/fig2_left.dir/fig2_left.cpp.o"
  "CMakeFiles/fig2_left.dir/fig2_left.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_left.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
