# Empty dependencies file for fig2_left.
# This may be replaced when dependencies are built.
