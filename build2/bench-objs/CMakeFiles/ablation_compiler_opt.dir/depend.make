# Empty dependencies file for ablation_compiler_opt.
# This may be replaced when dependencies are built.
