file(REMOVE_RECURSE
  "../bench/ablation_compiler_opt"
  "../bench/ablation_compiler_opt.pdb"
  "CMakeFiles/ablation_compiler_opt.dir/ablation_compiler_opt.cpp.o"
  "CMakeFiles/ablation_compiler_opt.dir/ablation_compiler_opt.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_compiler_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
