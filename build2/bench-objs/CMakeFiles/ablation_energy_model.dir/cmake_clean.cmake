file(REMOVE_RECURSE
  "../bench/ablation_energy_model"
  "../bench/ablation_energy_model.pdb"
  "CMakeFiles/ablation_energy_model.dir/ablation_energy_model.cpp.o"
  "CMakeFiles/ablation_energy_model.dir/ablation_energy_model.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_energy_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
