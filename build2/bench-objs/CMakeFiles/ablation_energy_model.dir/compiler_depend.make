# Empty compiler generated dependencies file for ablation_energy_model.
# This may be replaced when dependencies are built.
