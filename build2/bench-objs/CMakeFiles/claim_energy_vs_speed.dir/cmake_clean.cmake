file(REMOVE_RECURSE
  "../bench/claim_energy_vs_speed"
  "../bench/claim_energy_vs_speed.pdb"
  "CMakeFiles/claim_energy_vs_speed.dir/claim_energy_vs_speed.cpp.o"
  "CMakeFiles/claim_energy_vs_speed.dir/claim_energy_vs_speed.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/claim_energy_vs_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
