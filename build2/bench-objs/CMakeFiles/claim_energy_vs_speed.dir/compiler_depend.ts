# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for claim_energy_vs_speed.
