# Empty compiler generated dependencies file for claim_energy_vs_speed.
# This may be replaced when dependencies are built.
