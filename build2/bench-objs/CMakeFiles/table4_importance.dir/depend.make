# Empty dependencies file for table4_importance.
# This may be replaced when dependencies are built.
