file(REMOVE_RECURSE
  "../bench/table4_importance"
  "../bench/table4_importance.pdb"
  "CMakeFiles/table4_importance.dir/table4_importance.cpp.o"
  "CMakeFiles/table4_importance.dir/table4_importance.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_importance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
