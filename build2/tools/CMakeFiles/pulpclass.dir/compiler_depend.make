# Empty compiler generated dependencies file for pulpclass.
# This may be replaced when dependencies are built.
