file(REMOVE_RECURSE
  "CMakeFiles/pulpclass.dir/pulpclass_cli.cpp.o"
  "CMakeFiles/pulpclass.dir/pulpclass_cli.cpp.o.d"
  "pulpclass"
  "pulpclass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pulpclass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
